// Distributed LSM (DLSM): the thread-local component of the k-LSM.
//
// Each thread owns one ThreadLocalLsm. The owner is the only thread that
// restructures it (inserts, merges, overflow extraction), so structural
// updates are single-writer: a fresh BlockArray is built, published with a
// release store, and the old array is retired through EBR. Foreign threads
// interact in two ways, both via the published array under an EBR guard:
//
//   * k-LSM delete_min peeks the owner's own array (owner access, no guard
//     needed for the current array) — items are claimed per slot, so
//     claims by the owner, by merges, and by spies never conflict.
//   * spy(): when a thread's local LSM is empty, it claims every live item
//     out of a victim's published array and re-materializes them in its own
//     LSM. The paper describes spy as "copying" another thread's items; in
//     the original implementation items are shared so either side may claim
//     them, while here the spy *moves* them (each item is still delivered
//     exactly once, and the DLSM guarantee — returned items are minimal on
//     the current thread — is unchanged).
//
// Deletions from the DLSM skip at most k items per foreign thread, hence
// k(P-1) in total; combined with the SLSM's k this yields the k-LSM's kP
// bound (paper §B).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "mm/epoch.hpp"
#include "queues/klsm/block.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::klsm_detail {

template <typename Key, typename Value>
class ThreadLocalLsm {
 public:
  using BlockT = Block<Key, Value>;
  using ArrayT = BlockArray<Key, Value>;

  // Staging buffer: the owner batches up to kStagingSlots singleton inserts
  // before materializing them as one sorted block, cutting the per-insert
  // allocation cost (array + block + slots) by that factor — the role of
  // the insertion buffer in the original k-LSM. Staged items are fully
  // visible: the owner's peek/delete scans them and spies steal them, via
  // an epoch-tagged per-slot state word, so claiming is ABA-safe and
  // exactly-once exactly like block slots.
  static constexpr std::uint32_t kStagingSlots = 16;

  // Slot word layout: (epoch << 2) | phase.
  enum : std::uint64_t { kStageEmpty = 0, kStageReady = 1, kStageTaken = 2 };

  // Sentinel "block index" that peek/claim use to address staging slots.
  static constexpr std::uint32_t kStagingBlockIndex = 0xFFFFFFFFu;

  // Result of peek_local_min: enough context to claim exactly the item
  // that was peeked (stage_word pins the staging slot's incarnation).
  struct PeekResult {
    std::uint32_t block = 0;
    std::uint32_t slot = 0;
    std::uint64_t stage_word = 0;
    Key key{};
    bool staged = false;
  };

  ThreadLocalLsm() = default;

  ~ThreadLocalLsm() {
    ArrayT* array = published_.load(std::memory_order_relaxed);
    if (array) ArrayT::destroy(array);
  }

  ThreadLocalLsm(const ThreadLocalLsm&) = delete;
  ThreadLocalLsm& operator=(const ThreadLocalLsm&) = delete;

  // ---- owner-only operations -------------------------------------------

  void insert(Key key, Value value) {
    if (staging_cursor_ == kStagingSlots) flush_staging();
    StageSlot& slot = staging_[staging_cursor_++];
    const std::uint64_t epoch = slot.state.load(std::memory_order_relaxed) >> 2;
    slot.key.store(key, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    // Fault injection: stall between writing the payload and publishing the
    // state word — spies must never observe a half-written staged item.
    CPQ_INJECT("dlsm.stage");
    slot.state.store(((epoch + 1) << 2) | kStageReady,
                     std::memory_order_release);
  }

  // Claim all still-ready staged items into one sorted block. The scratch
  // vector is a member (owner-only path), so steady-state flushes reuse its
  // capacity instead of paying a heap round-trip per kStagingSlots inserts.
  void flush_staging() {
    std::vector<std::pair<Key, Value>>& items = flush_scratch_;
    items.clear();
    items.reserve(kStagingSlots);
    for (std::uint32_t i = 0; i < staging_cursor_; ++i) {
      StageSlot& slot = staging_[i];
      std::uint64_t word = slot.state.load(std::memory_order_acquire);
      if ((word & 3) != kStageReady) continue;  // stolen by a spy
      const Key key = slot.key.load(std::memory_order_relaxed);
      const Value value = slot.value.load(std::memory_order_relaxed);
      // Fault injection: widen the load-to-CAS window a spy races through.
      CPQ_INJECT("dlsm.flush_claim");
      if (slot.state.compare_exchange_strong(
              word, (word & ~std::uint64_t{3}) | kStageTaken,
              std::memory_order_acq_rel)) {
        items.emplace_back(key, value);
      }
    }
    staging_cursor_ = 0;
    if (items.empty()) return;
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    insert_block(BlockT::create(items.data(),
                                static_cast<std::uint32_t>(items.size())));
  }

  // Insert an already-sorted batch as one block (used when re-homing spied
  // items). The span overload lets callers keep their scratch buffer.
  void insert_sorted(const std::pair<Key, Value>* items, std::uint32_t n) {
    if (n == 0) return;
    insert_block(BlockT::create(items, n));
  }

  void insert_sorted(std::vector<std::pair<Key, Value>>&& items) {
    insert_sorted(items.data(), static_cast<std::uint32_t>(items.size()));
  }

  // Claim the local minimum. Returns false when the local LSM is empty.
  bool delete_local_min(Key& key_out, Value& value_out) {
    for (;;) {
      PeekResult peeked;
      if (!peek_local_min(peeked)) return false;
      if (claim_peeked(peeked, key_out, value_out)) return true;
      // Lost the item to a spy or merge; rescan.
    }
  }

  // Peek the local minimum candidate (staging included) without claiming.
  // Racy by design; claim_peeked revalidates.
  bool peek_local_min(PeekResult& out) const {
    bool found = false;
    Key best{};
    std::uint32_t block_index = 0;
    std::uint32_t slot_index = 0;
    const ArrayT* array = published_.load(std::memory_order_relaxed);
    if (array && array->find_min(block_index, slot_index, best)) {
      found = true;
      out.staged = false;
      out.block = block_index;
      out.slot = slot_index;
      out.key = best;
    }
    for (std::uint32_t i = 0; i < kStagingSlots; ++i) {
      const std::uint64_t word =
          staging_[i].state.load(std::memory_order_acquire);
      if ((word & 3) != kStageReady) continue;
      const Key key = staging_[i].key.load(std::memory_order_relaxed);
      if (!found || key < out.key) {
        found = true;
        out.staged = true;
        out.block = kStagingBlockIndex;
        out.slot = i;
        out.stage_word = word;
        out.key = key;
      }
    }
    return found;
  }

  // Claim exactly the item found by peek_local_min; fails if a racing spy,
  // merge, or flush got there first (or, for staging, if the slot was
  // reused — the epoch tag makes that CAS fail).
  bool claim_peeked(const PeekResult& peeked, Key& key_out, Value& value_out) {
    if (peeked.staged) {
      StageSlot& slot = staging_[peeked.slot];
      const Key key = slot.key.load(std::memory_order_relaxed);
      const Value value = slot.value.load(std::memory_order_relaxed);
      std::uint64_t expected = peeked.stage_word;
      if (!slot.state.compare_exchange_strong(
              expected, (expected & ~std::uint64_t{3}) | kStageTaken,
              std::memory_order_acq_rel)) {
        return false;
      }
      key_out = key;
      value_out = value;
      return true;
    }
    ArrayT* array = published_.load(std::memory_order_relaxed);
    if (!array || peeked.block >= array->count) return false;
    BlockT* block = array->blocks[peeked.block];
    if (peeked.slot >= block->slot_count()) return false;
    if (!block->claim(peeked.slot)) return false;
    key_out = block->slot(peeked.slot).key;
    value_out = block->slot(peeked.slot).value;
    return true;
  }

  // Upper bound on the number of live local items (staged included).
  std::uint32_t live_estimate() const {
    const ArrayT* array = published_.load(std::memory_order_relaxed);
    std::uint32_t total = array ? array->live_estimate() : 0;
    for (std::uint32_t i = 0; i < kStagingSlots; ++i) {
      total += (staging_[i].state.load(std::memory_order_acquire) & 3) ==
               kStageReady;
    }
    return total;
  }

  // Claim-extract the largest block's items (the DLSM->SLSM overflow batch)
  // and republish without that block. Returns the sorted batch (possibly
  // empty if racing claimants emptied the block first).
  std::vector<std::pair<Key, Value>> extract_largest_block() {
    std::vector<std::pair<Key, Value>> batch;
    ArrayT* array = published_.load(std::memory_order_relaxed);
    if (!array || array->count == 0) {
      // Everything may still sit in staging (tiny k): materialize it so the
      // overflow makes progress.
      flush_staging();
      array = published_.load(std::memory_order_relaxed);
      if (!array || array->count == 0) return batch;
    }
    BlockT* largest = array->blocks[0];  // capacities sorted descending
    largest->drain_into(batch);
    ArrayT* next = ArrayT::create();
    for (std::uint32_t i = 1; i < array->count; ++i) {
      array->blocks[i]->ref();
      next->blocks[next->count++] = array->blocks[i];
    }
    publish(next, array);
    return batch;
  }

  // ---- foreign-thread operations ----------------------------------------

  // Published array for spying. Caller must hold an EBR guard and must not
  // retain the pointer beyond the guard.
  ArrayT* spy_array() const {
    return published_.load(std::memory_order_acquire);
  }

  // Claim every live item out of `array` (a victim's published array read
  // under the caller's guard), appending to `out` (unsorted across blocks).
  static void steal_all(ArrayT* array,
                        std::vector<std::pair<Key, Value>>& out) {
    for (std::uint32_t i = 0; i < array->count; ++i) {
      array->blocks[i]->drain_into(out);
    }
  }

  // Claim the victim's staged items too (called on the victim's LSM by the
  // spying thread; the epoch-tagged CAS keeps it exactly-once).
  void steal_staging(std::vector<std::pair<Key, Value>>& out) {
    for (std::uint32_t i = 0; i < kStagingSlots; ++i) {
      StageSlot& slot = staging_[i];
      std::uint64_t word = slot.state.load(std::memory_order_acquire);
      if ((word & 3) != kStageReady) continue;
      const Key key = slot.key.load(std::memory_order_relaxed);
      const Value value = slot.value.load(std::memory_order_relaxed);
      // Fault injection: the mirror of dlsm.flush_claim, from the spy side.
      CPQ_INJECT("dlsm.steal");
      if (slot.state.compare_exchange_strong(
              word, (word & ~std::uint64_t{3}) | kStageTaken,
              std::memory_order_acq_rel)) {
        out.emplace_back(key, value);
      }
    }
  }

 private:
  void insert_block(BlockT* fresh) {
    ArrayT* old_array = published_.load(std::memory_order_relaxed);
    ArrayT* next = ArrayT::create();
    // Carry over existing blocks (dropping drained ones), then append the
    // new block and run the merge cascade from the tail.
    if (old_array) {
      for (std::uint32_t i = 0; i < old_array->count; ++i) {
        BlockT* block = old_array->blocks[i];
        if (block->first_live() >= block->slot_count()) continue;  // empty
        block->ref();
        next->blocks[next->count++] = block;
      }
    }
    next->blocks[next->count++] = fresh;
    merge_cascade(*next);
    publish(next, old_array);
  }

  // Merge trailing blocks while capacities collide. Claim-merged blocks
  // replace their sources in the (owner-private, unpublished) array.
  static void merge_cascade(ArrayT& array) {
    thread_local std::vector<std::pair<Key, Value>> merged_items;
    while (array.count >= 2) {
      BlockT* last = array.blocks[array.count - 1];
      BlockT* prev = array.blocks[array.count - 2];
      if (prev->capacity() > last->capacity()) break;
      claim_merge_into(*prev, *last, merged_items);
      prev->unref();
      last->unref();
      array.count -= 2;
      if (!merged_items.empty()) {
        array.blocks[array.count++] = BlockT::create(
            merged_items.data(),
            static_cast<std::uint32_t>(merged_items.size()));
      }
    }
  }

  void publish(ArrayT* next, ArrayT* old_array) {
    // Fault injection: delay publication so spies work on a stale array
    // whose blocks the replacement shares (claims must still be unique).
    CPQ_INJECT("dlsm.publish");
    published_.store(next, std::memory_order_release);
    if (old_array) {
      mm::EbrDomain::Guard guard;
      mm::EbrDomain::global().retire(static_cast<void*>(old_array),
                                     &ArrayT::ebr_deleter);
    }
  }

  // The payload fields are relaxed atomics because staged slots are a
  // seqlock: spies read key/value between an acquire load of `state` and
  // the epoch-validating CAS that claims the slot, concurrently with the
  // owner rewriting a reused slot. The CAS (its release half orders the
  // preceding relaxed loads before it) rejects any read that overlapped a
  // rewrite — but the overlapping loads still need to be atomic to be
  // defined behavior. For the 64-bit keys/values every queue instantiates,
  // these compile to the same plain moves as before.
  struct StageSlot {
    std::atomic<Key> key{};
    std::atomic<Value> value{};
    std::atomic<std::uint64_t> state{0};
  };

  std::atomic<ArrayT*> published_{nullptr};
  StageSlot staging_[kStagingSlots];
  std::uint32_t staging_cursor_ = 0;  // owner-thread access only
  std::vector<std::pair<Key, Value>> flush_scratch_;  // owner-thread only
};

}  // namespace cpq::klsm_detail
