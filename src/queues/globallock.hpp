// GlobalLock priority queue — the paper's sequential baseline ("glock").
//
// "A simple, standardized sequential priority queue implementation protected
// by a global lock is used to establish a baseline for acceptable
// performance." The paper used std::priority_queue; we use our own
// BinaryHeap (same algorithm) under a TTAS spinlock.
#pragma once

#include <cstddef>
#include <mutex>

#include "platform/cache.hpp"
#include "platform/spinlock.hpp"
#include "seq/binary_heap.hpp"

namespace cpq {

template <typename Key, typename Value>
class GlobalLockQueue {
 public:
  using key_type = Key;
  using value_type = Value;

  explicit GlobalLockQueue(unsigned max_threads = 0,
                           std::size_t initial_capacity = 1024) {
    (void)max_threads;  // no per-thread state
    heap_.value.reserve(initial_capacity);
  }

  class Handle {
   public:
    explicit Handle(GlobalLockQueue& queue) : queue_(&queue) {}

    void insert(Key key, Value value) {
      std::lock_guard<Spinlock> lock(queue_->lock_.value);
      queue_->heap_.value.insert(key, value);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      std::lock_guard<Spinlock> lock(queue_->lock_.value);
      return queue_->heap_.value.delete_min(key_out, value_out);
    }

   private:
    GlobalLockQueue* queue_;
  };

  Handle get_handle(unsigned thread_id) {
    (void)thread_id;
    return Handle(*this);
  }

  // Not linearizable with concurrent mutators; for tests and prefill checks.
  std::size_t unsafe_size() const { return heap_.value.size(); }

 private:
  CacheAligned<Spinlock> lock_;
  CacheAligned<seq::BinaryHeap<Key, Value>> heap_;
};

}  // namespace cpq
