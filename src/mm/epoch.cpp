#include "mm/epoch.hpp"

#include <cassert>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::mm {

namespace {

// Registry of live domains so that thread-exit cleanup never touches a
// destroyed domain (relevant only for test-local domains; the global domain
// lives for the whole process).
std::mutex& live_domains_mutex() {
  static std::mutex m;
  return m;
}

// Live domains keyed by address, valued by instance id: the id check
// protects against address reuse after destruction.
std::unordered_map<EbrDomain*, std::uint64_t>& live_domains() {
  static std::unordered_map<EbrDomain*, std::uint64_t> s;
  return s;
}

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Tiny scoped lock over std::atomic_flag (we avoid std::mutex on the retire
// fast path; the orphan lock is cold).
class FlagLock {
 public:
  explicit FlagLock(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  ~FlagLock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

}  // namespace

// Per-thread cache of (domain -> participant slot), released at thread exit.
struct EbrThreadSlot {
  struct Entry {
    EbrDomain* domain;
    std::uint64_t instance_id;
    EbrDomain::Participant* participant;
  };
  std::vector<Entry> slots;

  EbrDomain::Participant* find(EbrDomain* domain,
                               std::uint64_t instance_id) const noexcept {
    for (const auto& entry : slots) {
      if (entry.domain == domain && entry.instance_id == instance_id) {
        return entry.participant;
      }
    }
    return nullptr;
  }

  ~EbrThreadSlot() {
    std::lock_guard<std::mutex> lock(live_domains_mutex());
    for (auto& [domain, instance_id, participant] : slots) {
      const auto it = live_domains().find(domain);
      if (it == live_domains().end() || it->second != instance_id) continue;
      // Hand limbo lists to the domain's orphan store and release the slot.
      {
        FlagLock olock(domain->orphan_lock_);
        for (int g = 0; g < 3; ++g) {
          auto& limbo = participant->limbo[g];
          auto& orphans = domain->orphans_[g];
          orphans.insert(orphans.end(), limbo.begin(), limbo.end());
          limbo.clear();
        }
      }
      participant->nesting = 0;
      participant->retires_since_advance = 0;
      participant->local_epoch.store(~std::uint64_t{0},
                                     std::memory_order_release);
      participant->registered.store(false, std::memory_order_release);
    }
  }
};

namespace {
thread_local EbrThreadSlot tls_slot;
}

EbrDomain& EbrDomain::global() {
  static EbrDomain domain;
  return domain;
}

EbrDomain::EbrDomain() : instance_id_(next_instance_id()) {
  std::lock_guard<std::mutex> lock(live_domains_mutex());
  live_domains()[this] = instance_id_;
}

EbrDomain::~EbrDomain() {
  {
    std::lock_guard<std::mutex> lock(live_domains_mutex());
    live_domains().erase(this);
  }
  // Free everything still pending. Callers must have quiesced all threads
  // that used this domain.
  for (auto& participant : participants_) {
    for (auto& generation : participant.limbo) free_generation(generation);
  }
  for (auto& generation : orphans_) free_generation(generation);
}

EbrDomain::Participant* EbrDomain::self() {
  if (Participant* cached = tls_slot.find(this, instance_id_)) return cached;
  for (auto& candidate : participants_) {
    bool expected = false;
    if (!candidate.registered.load(std::memory_order_relaxed) &&
        candidate.registered.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      tls_slot.slots.push_back({this, instance_id_, &candidate});
      return &candidate;
    }
  }
  assert(!"EbrDomain: participant slots exhausted");
  std::abort();
}

void EbrDomain::enter() {
  Participant* p = self();
  if (p->nesting++ != 0) return;
  // Publish the observed epoch, then re-check: the store must be globally
  // visible before we read any shared pointers, and the published value must
  // equal the current epoch (otherwise a concurrent advance could already
  // have freed the generation we are about to read).
  std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    p->local_epoch.store(e, std::memory_order_seq_cst);
    // Fault injection: stall between publishing and re-checking the epoch,
    // the window the store/re-load protocol exists to close.
    CPQ_INJECT("ebr.enter");
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void EbrDomain::exit() {
  Participant* p = self();
  assert(p->nesting > 0);
  if (--p->nesting == 0) {
    p->local_epoch.store(kQuiescent, std::memory_order_release);
  }
}

EbrDomain::Guard::Guard(EbrDomain& domain) : domain_(domain) {
  domain_.enter();
}

EbrDomain::Guard::~Guard() { domain_.exit(); }

void EbrDomain::retire(void* ptr, void (*deleter)(void*)) {
  Participant* p = self();
  assert(p->nesting > 0 && "retire requires an active Guard");
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  // Fault injection: delay filing into limbo while other threads advance.
  CPQ_INJECT("ebr.retire");
  CPQ_COUNT(kEbrRetire);
  p->limbo[e % 3].push_back(RetiredNode{ptr, deleter});
  retired_count_.fetch_add(1, std::memory_order_relaxed);
  if (++p->retires_since_advance >= kRetireInterval) {
    p->retires_since_advance = 0;
    try_advance();
  }
}

void EbrDomain::try_advance() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  bool all_observed = true;
  for (const auto& participant : participants_) {
    if (!participant.registered.load(std::memory_order_acquire)) continue;
    const std::uint64_t le =
        participant.local_epoch.load(std::memory_order_acquire);
    if (le != kQuiescent && le != e) {
      all_observed = false;
      break;
    }
  }
  std::uint64_t current = e;
  if (all_observed) {
    // Fault injection: widen the scan-to-CAS window so a racing entrant can
    // publish an older epoch after our scan declared everyone caught up.
    CPQ_INJECT("ebr.advance");
    if (global_epoch_.compare_exchange_strong(current, e + 1,
                                              std::memory_order_acq_rel)) {
      CPQ_COUNT(kEbrAdvance);
      current = e + 1;
      // The advancing thread also drains the now-safe orphan generation.
      std::vector<RetiredNode> adopted;
      {
        FlagLock olock(orphan_lock_);
        adopted.swap(orphans_[(current + 1) % 3]);
      }
      free_generation(adopted);
    }
  }
  // Free this thread's own limbo generation that is at least two epochs old
  // (slot (current+1) % 3 can only hold nodes retired at epoch <= current-2).
  Participant* p = self();
  free_generation(p->limbo[(current + 1) % 3]);
}

void EbrDomain::drain() {
#ifndef NDEBUG
  for (const auto& participant : participants_) {
    if (participant.registered.load(std::memory_order_acquire)) {
      assert(participant.local_epoch.load(std::memory_order_acquire) ==
                 kQuiescent &&
             "drain requires all participants quiescent");
    }
  }
#endif
  for (auto& participant : participants_) {
    for (auto& generation : participant.limbo) free_generation(generation);
  }
  FlagLock olock(orphan_lock_);
  for (auto& generation : orphans_) free_generation(generation);
}

void EbrDomain::free_generation(std::vector<RetiredNode>& generation) {
  if (generation.empty()) return;
  for (const RetiredNode& node : generation) {
    node.deleter(node.ptr);
  }
  CPQ_COUNT_N(kEbrFree, generation.size());
  freed_count_.fetch_add(generation.size(), std::memory_order_relaxed);
  retired_count_.fetch_sub(generation.size(), std::memory_order_relaxed);
  generation.clear();
}

}  // namespace cpq::mm
