// Epoch-based memory reclamation (EBR) for the lock-free queues.
//
// Lock-free skiplists (Lindén–Jonsson, Fraser/SprayList) and the SLSM's
// versioned block arrays unlink nodes that racing readers may still be
// traversing. EBR is the classic solution (Fraser 2004): readers enter an
// epoch-protected critical section before touching shared nodes; writers
// retire unlinked nodes into per-thread limbo lists tagged with the epoch of
// retirement, and a node is physically freed only after the global epoch has
// advanced twice past its retirement epoch — at which point every reader
// that could have held a reference has left its critical section.
//
// Three limbo generations suffice: a node retired in epoch e is freed when
// the global epoch reaches e+2, because advancing from e to e+1 requires all
// active readers to have observed e (so none is still inside a section that
// started before the unlink).
//
// The domain is a process-wide singleton; participant records are
// thread_local, registered on first use and recycled through a freelist when
// threads exit. Orphaned limbo nodes of exited threads are adopted by the
// next epoch advance.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/cache.hpp"

namespace cpq::mm {

// A retired pointer plus its type-erased deleter.
struct RetiredNode {
  void* ptr;
  void (*deleter)(void*);
};

class EbrDomain {
 public:
  // The process-wide domain shared by all queues.
  static EbrDomain& global();

  EbrDomain();
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // RAII critical-section pin. Re-entrant: nested guards on the same thread
  // share one pin.
  class Guard {
   public:
    explicit Guard(EbrDomain& domain = EbrDomain::global());
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain& domain_;
  };

  // Retire a node for deferred deletion. Must be called while holding a
  // Guard (the node must already be unreachable for new readers).
  void retire(void* ptr, void (*deleter)(void*));

  template <typename T>
  void retire(T* ptr) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }

  // Attempt to advance the global epoch and free one limbo generation.
  // Called automatically every kRetireInterval retires; public for tests
  // and for draining at known-quiescent points.
  void try_advance();

  // Free everything currently retired. Only safe when no thread holds a
  // Guard (e.g. after a benchmark team has joined). Used by destructors of
  // queues that own their nodes and by tests.
  void drain();

  // Observability (tests, leak diagnostics).
  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  std::size_t retired_count() const noexcept {
    return retired_count_.load(std::memory_order_acquire);
  }
  std::uint64_t freed_count() const noexcept {
    return freed_count_.load(std::memory_order_acquire);
  }

  static constexpr unsigned kMaxParticipants = 512;
  static constexpr unsigned kRetireInterval = 64;

 private:
  struct Participant;

  Participant* self();
  void enter();
  void exit();
  void free_generation(std::vector<RetiredNode>& generation);

  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct alignas(kCacheLineSize) Participant {
    // Epoch observed at pin time, or kQuiescent when not in a section.
    std::atomic<std::uint64_t> local_epoch{kQuiescent};
    // True once some thread owns (or owned) this slot.
    std::atomic<bool> registered{false};
    // Nesting depth of guards; accessed only by the owning thread.
    unsigned nesting = 0;
    // Limbo lists, indexed by epoch % 3; owner-thread access only, except
    // adoption after the owner exited (protected by orphan_lock_).
    std::vector<RetiredNode> limbo[3];
    unsigned retires_since_advance = 0;
  };

  // Unique per domain instance across the whole process lifetime, so that a
  // thread's cached (domain -> participant) mapping can never be satisfied
  // by a different domain later constructed at the same address.
  const std::uint64_t instance_id_;

  Participant participants_[kMaxParticipants];
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::size_t> retired_count_{0};
  std::atomic<std::uint64_t> freed_count_{0};

  // Limbo lists inherited from exited threads, merged on thread exit and
  // emptied on epoch advance. Guarded by orphan_lock_.
  std::atomic_flag orphan_lock_ = ATOMIC_FLAG_INIT;
  std::vector<RetiredNode> orphans_[3];

  friend struct EbrThreadSlot;
};

// Convenience: retire with the global domain.
template <typename T>
inline void retire_global(T* ptr) {
  EbrDomain::global().retire(ptr);
}

}  // namespace cpq::mm
