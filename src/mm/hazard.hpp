// Hazard pointers (Michael, 2004) — the bounded-memory alternative to EBR.
//
// EBR (mm/epoch.hpp) is the default reclamation scheme in this library: its
// read side is one uncontended store, which is what a throughput benchmark
// wants. Its weakness is that a single stalled reader blocks reclamation
// globally. Hazard pointers bound unreclaimed memory by the number of
// published hazard slots regardless of stalls, at the price of a store +
// fence per pointer acquisition. Both substrates are exercised by
// bench_components (BM_EbrGuard vs BM_HazardAcquire) so downstream users
// can choose with data; the queues default to EBR.
//
// Usage:
//   HazardDomain<T> domain;
//   auto slot = domain.make_slot();          // per-thread, reusable
//   T* p = slot.protect(published_atomic);   // validated acquire
//   ... use *p ...
//   slot.clear();
//   domain.retire(old);                      // deferred delete
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/cache.hpp"

namespace cpq::mm {

template <typename T>
class HazardDomain {
 public:
  static constexpr unsigned kMaxSlots = 256;
  // Retire-list length that triggers a scan; the classic guidance is a
  // small multiple of the slot count in use.
  static constexpr unsigned kScanThreshold = 64;

  HazardDomain() = default;

  ~HazardDomain() {
    // All slots must be released and all threads quiesced.
    for (auto& record : records_) {
      for (const RetiredNode& node : record.retired) {
        node.deleter(node.ptr);
      }
      record.retired.clear();
    }
  }

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  class Slot {
   public:
    Slot() = default;
    Slot(HazardDomain* domain, unsigned index)
        : domain_(domain), index_(index) {}

    Slot(Slot&& other) noexcept
        : domain_(other.domain_), index_(other.index_) {
      other.domain_ = nullptr;
    }

    Slot& operator=(Slot&& other) noexcept {
      release();
      domain_ = other.domain_;
      index_ = other.index_;
      other.domain_ = nullptr;
      return *this;
    }

    ~Slot() { release(); }

    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    // Publish a hazard for the current value of `source` and re-validate
    // until stable (the standard acquire loop).
    T* protect(const std::atomic<T*>& source) {
      T* ptr = source.load(std::memory_order_acquire);
      for (;;) {
        hazard().store(ptr, std::memory_order_seq_cst);
        T* now = source.load(std::memory_order_seq_cst);
        if (now == ptr) return ptr;
        ptr = now;
      }
    }

    // Publish a hazard for a pointer the caller already holds safely
    // (e.g. obtained via another protected pointer).
    void set(T* ptr) { hazard().store(ptr, std::memory_order_seq_cst); }

    void clear() {
      if (domain_) hazard().store(nullptr, std::memory_order_release);
    }

    // Retire through the owning record (per-slot retire lists avoid any
    // shared mutable state on the retire path).
    void retire(T* ptr, void (*deleter)(void*) = &default_deleter) {
      CPQ_COUNT(kHazardRetire);
      auto& record = domain_->records_[index_];
      record.retired.push_back({ptr, deleter});
      if (record.retired.size() >= kScanThreshold) domain_->scan(record);
    }

   private:
    friend class HazardDomain;

    static void default_deleter(void* p) { delete static_cast<T*>(p); }

    std::atomic<T*>& hazard() { return domain_->records_[index_].hazard; }

    void release() {
      if (!domain_) return;
      clear();
      // Hand leftover retired nodes to slot 0's list… simplest: scan hard,
      // then push survivors to the domain's orphan list.
      auto& record = domain_->records_[index_];
      domain_->scan(record);
      if (!record.retired.empty()) {
        domain_->adopt_orphans(record.retired);
        record.retired.clear();
      }
      record.in_use.store(false, std::memory_order_release);
      domain_ = nullptr;
    }

    HazardDomain* domain_ = nullptr;
    unsigned index_ = 0;
  };

  // Acquire a hazard slot (typically one per thread, held for the thread's
  // lifetime).
  Slot make_slot() {
    for (unsigned i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (!records_[i].in_use.load(std::memory_order_relaxed) &&
          records_[i].in_use.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return Slot(this, i);
      }
    }
    assert(!"HazardDomain: slots exhausted");
    std::abort();
  }

  std::size_t retired_count() const {
    std::size_t total = orphan_count_.load(std::memory_order_acquire);
    for (const auto& record : records_) total += record.retired.size();
    return total;
  }

  std::uint64_t freed_count() const {
    return freed_.load(std::memory_order_acquire);
  }

 private:
  struct RetiredNode {
    T* ptr;
    void (*deleter)(void*);
  };

  struct alignas(kCacheLineSize) Record {
    std::atomic<bool> in_use{false};
    std::atomic<T*> hazard{nullptr};
    std::vector<RetiredNode> retired;  // owner-slot access only
  };

  // Free every retired node not covered by a published hazard.
  void scan(Record& record) {
    CPQ_COUNT(kHazardScan);
    std::vector<T*> hazards;
    hazards.reserve(kMaxSlots);
    for (const auto& other : records_) {
      if (T* h = other.hazard.load(std::memory_order_seq_cst)) {
        hazards.push_back(h);
      }
    }
    std::sort(hazards.begin(), hazards.end());
    std::vector<RetiredNode> survivors;
    for (const RetiredNode& node : record.retired) {
      if (std::binary_search(hazards.begin(), hazards.end(), node.ptr)) {
        survivors.push_back(node);
      } else {
        node.deleter(node.ptr);
        freed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    record.retired = std::move(survivors);
    // Also take a pass over orphans while we are at it.
    std::vector<RetiredNode> orphans;
    {
      SpinGuard guard(orphan_lock_);
      orphans = std::move(orphans_);
      orphans_.clear();
      orphan_count_.store(0, std::memory_order_release);
    }
    std::vector<RetiredNode> orphan_survivors;
    for (const RetiredNode& node : orphans) {
      if (std::binary_search(hazards.begin(), hazards.end(), node.ptr)) {
        orphan_survivors.push_back(node);
      } else {
        node.deleter(node.ptr);
        freed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!orphan_survivors.empty()) adopt_orphans(orphan_survivors);
  }

  void adopt_orphans(const std::vector<RetiredNode>& nodes) {
    SpinGuard guard(orphan_lock_);
    orphans_.insert(orphans_.end(), nodes.begin(), nodes.end());
    orphan_count_.store(orphans_.size(), std::memory_order_release);
  }

  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag& flag_;
  };

  Record records_[kMaxSlots];
  std::atomic_flag orphan_lock_ = ATOMIC_FLAG_INIT;
  std::vector<RetiredNode> orphans_;
  std::atomic<std::size_t> orphan_count_{0};
  std::atomic<std::uint64_t> freed_{0};
};

}  // namespace cpq::mm
