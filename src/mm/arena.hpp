// Size-class chunk pool for the k-LSM's block storage.
//
// The k-LSM merge cascade allocates and retires a block (header + slot
// array) on every structural insert, and EBR only *defers* the matching
// frees — under load the allocator sees the full churn, and malloc/free
// round-trips (plus their lock and page-fault traffic) show up directly in
// the merge path's cycles/op. This pool removes that churn without changing
// lifetime semantics:
//
//   * Chunks are grouped into power-of-two size classes (64 B .. 1 MiB;
//     larger requests fall through to ::operator new). Block capacities are
//     already powers of two (Block::capacity_for), so classes fit tightly.
//   * Each thread keeps a small per-class magazine of free chunks. The hot
//     allocate/deallocate path is a thread-local pointer pop/push — no
//     atomics, no lock.
//   * Magazines overflow into (and refill in batches from) a spinlocked
//     global freelist per class, so chunks freed by EBR on one thread are
//     recycled by inserters on another.
//
// Lifetime robustness: blocks retired through EBR can be freed during
// static destruction (EbrDomain drain), potentially after the pool's own
// destructor has run (singleton destruction order follows first-use order,
// which tests do not control). pool_alloc/pool_free therefore route through
// a liveness flag: once the pool is gone, they degrade to plain
// ::operator new/delete, which is always safe because pooled chunks are
// ordinary operator-new storage.
//
// The pool is deliberately NOT a general allocator: callers must pass the
// same byte count to pool_free that they passed to pool_alloc (the k-LSM
// recomputes it from the block's slot count), and chunks are never returned
// to the OS until trim() or process exit.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <thread>

#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::mm {

namespace arena_detail {

// Minimal TTAS lock. Deliberately not platform/spinlock.hpp's Spinlock: the
// allocator must stay invisible to the contention counters (CPQ_COUNT would
// attribute pool traffic to the queue under test). Like Spinlock it yields
// after sustained spinning — with more runnable threads than cores a
// preempted holder otherwise costs every spinner its full quantum.
class PoolLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      unsigned spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins < 64) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Tracks whether the pool singleton is alive. Zero-initialized before any
// dynamic initialization; flipped by the pool's constructor/destructor.
inline std::atomic<bool> g_pool_alive{false};

}  // namespace arena_detail

class BlockPool {
 public:
  static constexpr unsigned kMinClassLog = 6;   // 64 B
  static constexpr unsigned kMaxClassLog = 20;  // 1 MiB
  static constexpr unsigned kClassCount = kMaxClassLog - kMinClassLog + 1;
  // Per-thread magazine depth per class; half is flushed/refilled at a time
  // so a producer/consumer pair doesn't thrash the global freelist. EBR
  // systematically frees blocks on a different thread than the one that
  // allocated them, so in steady state every class sees cross-thread flow:
  // the depth bounds how often that flow serializes on the freelist lock
  // (once per kMagazineDepth/2 operations, in batches of the same size).
  static constexpr unsigned kMagazineDepth = 32;

  struct Stats {
    std::uint64_t fresh = 0;     // chunks obtained from ::operator new
    std::uint64_t reused = 0;    // allocations served from pooled chunks
    std::uint64_t recycled = 0;  // deallocations captured by the pool
    std::uint64_t oversize = 0;  // requests above kMaxClassLog (not pooled)
  };

  static BlockPool& global() {
    static BlockPool pool;
    return pool;
  }

  BlockPool() { arena_detail::g_pool_alive.store(true, std::memory_order_release); }

  ~BlockPool() {
    arena_detail::g_pool_alive.store(false, std::memory_order_release);
    trim();
  }

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  // Smallest pooled chunk size covering `bytes` (the size class), or
  // `bytes` itself for oversize requests.
  static std::size_t chunk_size_for(std::size_t bytes) noexcept {
    if (bytes <= (std::size_t{1} << kMinClassLog)) {
      return std::size_t{1} << kMinClassLog;
    }
    if (bytes > (std::size_t{1} << kMaxClassLog)) return bytes;
    return std::bit_ceil(bytes);
  }

  void* allocate(std::size_t bytes) {
    MagazineSet& set = magazines();
    const int cls = class_for(bytes);
    if (cls < 0) {
      ++set.local.oversize;
      return ::operator new(bytes);
    }
    // Fault injection: an allocation seam before any state mutates — a
    // throw here must leave pool and caller consistent.
    CPQ_INJECT("arena.alloc");
    Magazine& mag = set.classes[cls];
    if (mag.count == 0) refill(cls, mag);
    if (mag.count > 0) {
      ++set.local.reused;
      return mag.chunks[--mag.count];
    }
    ++set.local.fresh;
    return ::operator new(std::size_t{1} << (kMinClassLog + cls));
  }

  void deallocate(void* ptr, std::size_t bytes) noexcept {
    MagazineSet& set = magazines();
    const int cls = class_for(bytes);
    if (cls < 0) {
      ::operator delete(ptr);
      return;
    }
    ++set.local.recycled;
    Magazine& mag = set.classes[cls];
    if (mag.count == kMagazineDepth) flush_half(cls, mag);
    mag.chunks[mag.count++] = ptr;
  }

  // Global view plus the calling thread's not-yet-retired deltas. The hot
  // path counts into plain thread-local integers (shared fetch_adds on
  // every block alloc/free would serialize exactly the cache line this pool
  // exists to stop bouncing); each thread's tally merges into the global
  // atomics when the thread exits. Same-thread before/after deltas are
  // exact; another still-running thread's tally becomes visible at its
  // exit.
  Stats stats() const noexcept {
    const Stats& local = magazines().local;
    Stats s;
    s.fresh = stat_fresh_.load(std::memory_order_relaxed) + local.fresh;
    s.reused = stat_reused_.load(std::memory_order_relaxed) + local.reused;
    s.recycled =
        stat_recycled_.load(std::memory_order_relaxed) + local.recycled;
    s.oversize =
        stat_oversize_.load(std::memory_order_relaxed) + local.oversize;
    return s;
  }

  // Release every chunk parked in the GLOBAL freelists back to the runtime.
  // Thread magazines are untouched (they drain on thread exit). Safe at any
  // time — freelist chunks are by definition not in use.
  void trim() noexcept {
    for (unsigned cls = 0; cls < kClassCount; ++cls) {
      FreeChunk* head;
      {
        std::lock_guard<arena_detail::PoolLock> lock(freelists_[cls].value.lock);
        head = freelists_[cls].value.head;
        freelists_[cls].value.head = nullptr;
        freelists_[cls].value.length = 0;
      }
      while (head != nullptr) {
        FreeChunk* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

 private:
  // Free chunks are linked through their own storage.
  struct FreeChunk {
    FreeChunk* next;
  };
  static_assert(sizeof(FreeChunk) <= (std::size_t{1} << kMinClassLog));

  struct FreeList {
    arena_detail::PoolLock lock;
    FreeChunk* head = nullptr;
    std::size_t length = 0;
  };

  struct Magazine {
    void* chunks[kMagazineDepth];
    unsigned count = 0;
  };

  // Thread magazines flush to the global pool on thread exit (chunks into
  // the freelists, the stats tally into the global counters); after the
  // pool itself died (static destruction) they free directly.
  struct MagazineSet {
    Magazine classes[kClassCount];
    Stats local;

    ~MagazineSet() {
      const bool alive =
          arena_detail::g_pool_alive.load(std::memory_order_acquire);
      for (unsigned cls = 0; cls < kClassCount; ++cls) {
        Magazine& mag = classes[cls];
        if (alive) {
          BlockPool::global().flush_all(cls, mag);
        } else {
          while (mag.count > 0) ::operator delete(mag.chunks[--mag.count]);
        }
      }
      if (alive) BlockPool::global().merge_stats(local);
    }
  };

  static int class_for(std::size_t bytes) noexcept {
    if (bytes > (std::size_t{1} << kMaxClassLog)) return -1;
    const unsigned log =
        std::bit_width(bytes <= 1 ? std::size_t{1} : bytes - 1);
    return log <= kMinClassLog ? 0 : static_cast<int>(log - kMinClassLog);
  }

  static MagazineSet& magazines() {
    thread_local MagazineSet set;
    return set;
  }

  void merge_stats(const Stats& local) noexcept {
    stat_fresh_.fetch_add(local.fresh, std::memory_order_relaxed);
    stat_reused_.fetch_add(local.reused, std::memory_order_relaxed);
    stat_recycled_.fetch_add(local.recycled, std::memory_order_relaxed);
    stat_oversize_.fetch_add(local.oversize, std::memory_order_relaxed);
  }

  void refill(unsigned cls, Magazine& mag) {
    FreeList& list = freelists_[cls].value;
    std::lock_guard<arena_detail::PoolLock> lock(list.lock);
    while (mag.count < kMagazineDepth / 2 && list.head != nullptr) {
      mag.chunks[mag.count++] = static_cast<void*>(list.head);
      list.head = list.head->next;
      --list.length;
    }
  }

  void flush_half(unsigned cls, Magazine& mag) noexcept {
    FreeList& list = freelists_[cls].value;
    std::lock_guard<arena_detail::PoolLock> lock(list.lock);
    while (mag.count > kMagazineDepth / 2) {
      auto* chunk = static_cast<FreeChunk*>(mag.chunks[--mag.count]);
      chunk->next = list.head;
      list.head = chunk;
      ++list.length;
    }
  }

  void flush_all(unsigned cls, Magazine& mag) noexcept {
    FreeList& list = freelists_[cls].value;
    std::lock_guard<arena_detail::PoolLock> lock(list.lock);
    while (mag.count > 0) {
      auto* chunk = static_cast<FreeChunk*>(mag.chunks[--mag.count]);
      chunk->next = list.head;
      list.head = chunk;
      ++list.length;
    }
  }

  CacheAligned<FreeList> freelists_[kClassCount];
  std::atomic<std::uint64_t> stat_fresh_{0};
  std::atomic<std::uint64_t> stat_reused_{0};
  std::atomic<std::uint64_t> stat_recycled_{0};
  std::atomic<std::uint64_t> stat_oversize_{0};
};

// Pool entry points with static-destruction fallback (see header comment).
// All k-LSM block storage goes through these.
inline void* pool_alloc(std::size_t bytes) {
  if (!arena_detail::g_pool_alive.load(std::memory_order_acquire)) {
    // First call constructs the singleton (which flips the flag); calls
    // after its destruction take the plain-new fallback forever.
    static thread_local bool constructing = false;
    if (!constructing) {
      constructing = true;
      BlockPool& pool = BlockPool::global();
      constructing = false;
      if (arena_detail::g_pool_alive.load(std::memory_order_acquire)) {
        return pool.allocate(bytes);
      }
    }
    return ::operator new(bytes);
  }
  return BlockPool::global().allocate(bytes);
}

inline void pool_free(void* ptr, std::size_t bytes) noexcept {
  if (!arena_detail::g_pool_alive.load(std::memory_order_acquire)) {
    ::operator delete(ptr);
    return;
  }
  BlockPool::global().deallocate(ptr, bytes);
}

}  // namespace cpq::mm
