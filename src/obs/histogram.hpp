// Log-linear ("HDR-style") histogram for latency recording.
//
// The latency harness used to push every per-operation sample into an
// unbounded std::vector<double>: at 10^7 ops/thread that is 80 MB per thread
// per repetition, and the allocations themselves perturb the tail being
// measured. This histogram records a 64-bit value in O(1) with no
// allocation: the value range is split into octaves (powers of two) and each
// octave into 2^kSubBucketBits linear sub-buckets, bounding the relative
// quantization error by 2^-kSubBucketBits (~3% at 5 bits) while covering
// the full uint64 range in a fixed ~15 KB table.
//
// Quantiles use nearest-rank over the cumulative bucket counts, matching
// percentiles_of() in bench_framework/latency.hpp; the exact minimum and
// maximum are tracked separately so max (and the q -> 1 limit) are not
// quantized. Histograms merge bucket-wise (merge) or with a multiplicative
// rescale (add_scaled) so per-thread tick-domain recordings can be folded
// into one nanosecond-domain histogram after per-repetition calibration.
//
// Single-writer: one histogram per recording thread, merged after joining.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace cpq::obs {

class LogHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
  // One linear block for [0, kSubBuckets) plus one block per remaining
  // octave: values up to 2^64 - 1 always map into the table.
  static constexpr unsigned kBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  static constexpr unsigned bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<unsigned>(value);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
    const unsigned shift = msb - kSubBucketBits;
    const unsigned sub =
        static_cast<unsigned>(value >> shift) - kSubBuckets;
    return (shift + 1) * kSubBuckets + sub;
  }

  // Inclusive lower bound of bucket `index`; buckets partition [0, 2^64).
  static constexpr std::uint64_t bucket_low(unsigned index) noexcept {
    if (index < kSubBuckets) return index;
    const unsigned shift = index / kSubBuckets - 1;
    const unsigned sub = index % kSubBuckets;
    return (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
  }

  // Inclusive upper bound of bucket `index`.
  static constexpr std::uint64_t bucket_high(unsigned index) noexcept {
    if (index + 1 >= kBuckets) return ~std::uint64_t{0};
    return bucket_low(index + 1) - 1;
  }

  // Midpoint, used as the representative value for quantiles.
  static constexpr std::uint64_t representative(unsigned index) noexcept {
    const std::uint64_t low = bucket_low(index);
    return low + (bucket_high(index) - low) / 2;
  }

  void record(std::uint64_t value) noexcept { record_n(value, 1); }

  void record_n(std::uint64_t value, std::uint64_t n) noexcept {
    if (n == 0) return;
    add_to_bucket(value, n);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min_value() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max_value() const noexcept { return count_ ? max_ : 0; }
  double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Nearest-rank quantile (q in [0, 1]): the representative value of the
  // bucket holding the ceil(q * count)-th smallest sample, clamped to the
  // exact observed [min, max]. q = 1 returns the exact maximum.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    const double raw = std::ceil(q * static_cast<double>(count_));
    std::uint64_t rank = raw <= 1.0 ? 1 : static_cast<std::uint64_t>(raw);
    rank = std::min(rank, count_);
    if (rank == count_) return max_;
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= rank) {
        return std::clamp(representative(i), min_, max_);
      }
    }
    return max_;
  }

  // Bucket-wise merge (same unit domain on both sides).
  void merge(const LogHistogram& other) noexcept {
    if (other.count_ == 0) return;
    for (unsigned i = 0; i < kBuckets; ++i) {
      if (other.buckets_[i]) {
        count_ += other.buckets_[i];
        buckets_[i] += other.buckets_[i];
      }
    }
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  // Merge `other` with every value multiplied by `scale` (> 0): folds a
  // tick-domain recording into a nanosecond-domain accumulator. Bucket
  // counts move to the bucket of their scaled representative (one extra
  // quantization step); min/max are rescaled exactly.
  void add_scaled(const LogHistogram& other, double scale) noexcept {
    if (other.count_ == 0 || scale <= 0.0) return;
    for (unsigned i = 0; i < kBuckets; ++i) {
      if (other.buckets_[i]) {
        const double scaled =
            static_cast<double>(representative(i)) * scale;
        add_to_bucket(static_cast<std::uint64_t>(scaled + 0.5),
                      other.buckets_[i]);
      }
    }
    min_ = std::min(
        min_, static_cast<std::uint64_t>(
                  static_cast<double>(other.min_) * scale + 0.5));
    max_ = std::max(
        max_, static_cast<std::uint64_t>(
                  static_cast<double>(other.max_) * scale + 0.5));
  }

  void clear() noexcept { *this = LogHistogram{}; }

  // Human-readable dump: summary line plus the populated buckets.
  void print(std::FILE* out, const char* label) const {
    std::fprintf(out,
                 "%s: n=%llu mean=%.0f p50=%llu p90=%llu p99=%llu "
                 "p999=%llu max=%llu\n",
                 label, static_cast<unsigned long long>(count_), mean(),
                 static_cast<unsigned long long>(quantile(0.50)),
                 static_cast<unsigned long long>(quantile(0.90)),
                 static_cast<unsigned long long>(quantile(0.99)),
                 static_cast<unsigned long long>(quantile(0.999)),
                 static_cast<unsigned long long>(max_value()));
    if (count_ == 0) return;
    for (unsigned i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      std::fprintf(out, "  [%llu, %llu]  %llu\n",
                   static_cast<unsigned long long>(bucket_low(i)),
                   static_cast<unsigned long long>(bucket_high(i)),
                   static_cast<unsigned long long>(buckets_[i]));
    }
  }

 private:
  void add_to_bucket(std::uint64_t value, std::uint64_t n) noexcept {
    buckets_[bucket_index(value)] += n;
    count_ += n;
    sum_ += static_cast<double>(value) * static_cast<double>(n);
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

// Multi-writer variant for live sampling: identical bucket geometry, but
// every bucket is a relaxed atomic so worker threads can record while the
// telemetry sampler reads concurrently — race-free under TSan by
// construction. Costs one lock-prefixed add per record (vs LogHistogram's
// plain add), so it is only fed when telemetry is actually on.
//
// No min/max/sum tracking: the sampler derives windowed quantiles purely
// from bucket deltas (window_stats below), and exact extremes would need
// CAS loops on the hot path for a value the quantized max already
// approximates to ~3%.
class AtomicLogHistogram {
 public:
  static constexpr unsigned kBuckets = LogHistogram::kBuckets;

  void record(std::uint64_t value) noexcept {
    buckets_[LogHistogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Copy the current bucket counts into `out[kBuckets]`.
  void load_buckets(std::uint64_t* out) const noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      n += buckets_[i].load(std::memory_order_relaxed);
    }
    return n;
  }

  void reset() noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// Compact quantile summary of one sampling window, computed from the
// difference of two cumulative bucket snapshots (cur - prev, element-wise).
// Bucket counts are monotone per bucket (recorders only add), so the delta
// is a valid histogram of exactly the values recorded in the window. Values
// are bucket representatives: quantized to <= ~3% like LogHistogram, and
// `max` is the representative of the highest populated bucket.
struct HistogramWindow {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;

  static HistogramWindow from_delta(const std::uint64_t* cur,
                                    const std::uint64_t* prev) noexcept {
    HistogramWindow w;
    unsigned highest = 0;
    for (unsigned i = 0; i < LogHistogram::kBuckets; ++i) {
      const std::uint64_t d = cur[i] - prev[i];
      if (d != 0) {
        w.count += d;
        highest = i;
      }
    }
    if (w.count == 0) return w;
    w.max = LogHistogram::representative(highest);
    const auto rank_value = [&](double q) {
      const double raw = std::ceil(q * static_cast<double>(w.count));
      std::uint64_t rank = raw <= 1.0 ? 1 : static_cast<std::uint64_t>(raw);
      rank = std::min(rank, w.count);
      std::uint64_t cumulative = 0;
      for (unsigned i = 0; i < LogHistogram::kBuckets; ++i) {
        cumulative += cur[i] - prev[i];
        if (cumulative >= rank) return LogHistogram::representative(i);
      }
      return w.max;
    };
    w.p50 = rank_value(0.50);
    w.p99 = rank_value(0.99);
    return w;
  }
};

static_assert(LogHistogram::bucket_index(0) == 0);
static_assert(LogHistogram::bucket_index(31) == 31);
static_assert(LogHistogram::bucket_index(32) == 32);
static_assert(LogHistogram::bucket_low(LogHistogram::bucket_index(1000)) <=
              1000);
static_assert(LogHistogram::bucket_high(LogHistogram::bucket_index(1000)) >=
              1000);
static_assert(LogHistogram::bucket_index(~std::uint64_t{0}) <
              LogHistogram::kBuckets);

}  // namespace cpq::obs
