// Chrome trace-event exporter: converts the per-thread sampled op-trace
// rings (obs/metrics.hpp) into the Trace Event JSON format understood by
// Perfetto / chrome://tracing, so stalls, backoff storms, and shard steals
// become visually inspectable on a timeline instead of a text dump.
//
// Each sampled operation becomes a thread-scoped instant event
// ({"ph":"i","s":"t"}) on a synthetic thread lane named after its registry
// slice; a metadata event ({"ph":"M","name":"thread_name"}) labels each
// lane. Timestamps are fast_timestamp() ticks (RDTSCP on x86-64) rebased to
// the earliest event and converted to microseconds with a caller-supplied
// ns-per-tick factor — calibrate_ns_per_tick() measures it against a
// wall-clock Stopwatch, the same calibration the latency harness performs
// per repetition.
//
// The rings hold the last kTraceCapacity sampled ops per thread (a rolling
// tail, not the full history): the export shows each thread's most recent
// window, which is exactly what a stall or end-of-run inspection needs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/timing.hpp"

namespace cpq::obs {

// Measure fast_timestamp() ticks against wall-clock nanoseconds over a short
// spin window. ~20 ms keeps the error well under 1% on an invariant TSC.
inline double calibrate_ns_per_tick(double window_s = 0.02) {
  Stopwatch watch;
  const std::uint64_t t0 = fast_timestamp();
  while (watch.elapsed_seconds() < window_s) {
  }
  const std::uint64_t t1 = fast_timestamp();
  const std::uint64_t ns = watch.elapsed_ns();
  if (t1 <= t0 || ns == 0) return 1.0;
  return static_cast<double>(ns) / static_cast<double>(t1 - t0);
}

// Write every live trace-ring event as a Trace Event JSON object
// ({"traceEvents":[...]}) and return the number of operation events written
// (metadata events excluded). Zero events still yields a valid document.
inline std::size_t write_chrome_trace(std::FILE* out,
                                      const MetricsRegistry& registry,
                                      double ns_per_tick) {
  struct Event {
    unsigned slice;
    std::uint8_t op;
    std::uint64_t key;
    std::uint64_t timestamp;
  };
  std::vector<Event> events;
  registry.visit_trace_events([&](unsigned slice, std::uint8_t op,
                                  std::uint64_t key, std::uint64_t ts) {
    events.push_back(Event{slice, op, key, ts});
  });

  std::uint64_t base = ~std::uint64_t{0};
  for (const Event& e : events) base = std::min(base, e.timestamp);
  if (ns_per_tick <= 0.0) ns_per_tick = 1.0;

  std::fprintf(out, "{\"traceEvents\":[");
  bool first = true;
  // One thread_name metadata event per populated lane.
  std::vector<unsigned> lanes;
  for (const Event& e : events) {
    if (std::find(lanes.begin(), lanes.end(), e.slice) == lanes.end()) {
      lanes.push_back(e.slice);
    }
  }
  std::sort(lanes.begin(), lanes.end());
  for (const unsigned lane : lanes) {
    std::fprintf(out,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"bench worker slice %u\"}}",
                 first ? "" : ",", lane + 1, lane);
    first = false;
  }
  for (const Event& e : events) {
    const double us =
        static_cast<double>(e.timestamp - base) * ns_per_tick / 1000.0;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                 "\"tid\":%u,\"ts\":%.3f,"
                 "\"args\":{\"key\":%llu,\"sample_period\":%llu}}",
                 first ? "" : ",", trace_op_name(e.op), e.slice + 1, us,
                 static_cast<unsigned long long>(e.key),
                 static_cast<unsigned long long>(kTraceSampleMask + 1));
    first = false;
  }
  std::fprintf(out, "],\"displayTimeUnit\":\"ns\"}\n");
  return events.size();
}

}  // namespace cpq::obs
