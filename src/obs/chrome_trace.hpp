// Chrome trace-event exporter: converts the per-thread sampled op-trace
// rings (obs/metrics.hpp) into the Trace Event JSON format understood by
// Perfetto / chrome://tracing, so stalls, backoff storms, and shard steals
// become visually inspectable on a timeline instead of a text dump.
//
// Each sampled operation becomes a thread-scoped instant event
// ({"ph":"i","s":"t"}) on a synthetic thread lane named after its registry
// slice; a metadata event ({"ph":"M","name":"thread_name"}) labels each
// lane. When a telemetry plane with records is supplied, every
// TelemetryRecord additionally becomes a set of counter events ({"ph":"C"})
// — Perfetto renders each as its own counter track (throughput, p99
// quantiles, shed rate, contention deltas) aligned with the op events.
//
// Timestamps: op events are fast_timestamp() ticks, telemetry records are
// monotonic_ns. Both are mapped onto the shared monotonic-ns timeline by
// the process-wide TscClock calibration (platform/clock.hpp) — ONE
// calibration for every artifact, which is what makes the alignment hold —
// then rebased to the earliest event and emitted in microseconds.
//
// The rings hold the last kTraceCapacity sampled ops per thread (a rolling
// tail, not the full history): the export shows each thread's most recent
// window, which is exactly what a stall or end-of-run inspection needs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "platform/clock.hpp"
#include "platform/timing.hpp"

namespace cpq::obs {

// Back-compat shim: the process-wide calibration from platform/clock.hpp.
// (Previously this spun its own 20 ms measurement per call; now every
// consumer shares the TscClock's single one.)
inline double calibrate_ns_per_tick() { return tsc_clock().ns_per_tick(); }

// Write every live trace-ring event — plus, when `plane` is non-null and
// has records, one counter event per telemetry sample per track — as a
// Trace Event JSON document ({"traceEvents":[...]}). Returns the number of
// operation events written (metadata and counter events excluded). Zero
// events still yields a valid document.
inline std::size_t write_chrome_trace(std::FILE* out,
                                      const MetricsRegistry& registry,
                                      const TelemetryPlane* plane = nullptr) {
  struct Event {
    unsigned slice;
    std::uint8_t op;
    std::uint64_t key;
    std::uint64_t t_ns;  // monotonic-ns timeline
  };
  const TscClock& clock = tsc_clock();
  std::vector<Event> events;
  registry.visit_trace_events([&](unsigned slice, std::uint8_t op,
                                  std::uint64_t key, std::uint64_t ts) {
    events.push_back(Event{slice, op, key, clock.to_ns(ts)});
  });

  struct CounterPoint {
    std::uint64_t t_ns;
    double delivered_per_s;
    double submitted_per_s;
    double shed_pct;
    double p99_sojourn_us;
    double p99_latency_us;
    double rank_p90;
    double in_flight;
    std::uint64_t cas_retry;
    std::uint64_t lock_retry;
  };
  std::vector<CounterPoint> points;
  if (plane != nullptr) {
    plane->visit_records([&](const TelemetryRecord& r) {
      CounterPoint p{};
      p.t_ns = r.t_ns;
      p.delivered_per_s = r.delivered_per_s;
      p.submitted_per_s = r.submitted_per_s;
      p.shed_pct = r.shed_pct;
      p.p99_sojourn_us = r.sojourn.count
                             ? static_cast<double>(r.sojourn.p99) / 1000.0
                             : std::nan("");
      p.p99_latency_us = r.latency.count
                             ? static_cast<double>(r.latency.p99) / 1000.0
                             : std::nan("");
      p.rank_p90 = r.rank_samples ? r.rank_p90 : std::nan("");
      p.in_flight = r.gauges.find("in_flight").value_or(std::nan(""));
      p.cas_retry =
          r.counters[static_cast<unsigned>(Counter::kCasRetry)];
      p.lock_retry =
          r.counters[static_cast<unsigned>(Counter::kLockRetry)];
      points.push_back(p);
    });
  }

  std::uint64_t base = ~std::uint64_t{0};
  for (const Event& e : events) base = std::min(base, e.t_ns);
  for (const CounterPoint& p : points) base = std::min(base, p.t_ns);
  if (base == ~std::uint64_t{0}) base = 0;

  std::fprintf(out, "{\"traceEvents\":[");
  bool first = true;
  // One thread_name metadata event per populated lane.
  std::vector<unsigned> lanes;
  for (const Event& e : events) {
    if (std::find(lanes.begin(), lanes.end(), e.slice) == lanes.end()) {
      lanes.push_back(e.slice);
    }
  }
  std::sort(lanes.begin(), lanes.end());
  for (const unsigned lane : lanes) {
    std::fprintf(out,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"bench worker slice %u\"}}",
                 first ? "" : ",", lane + 1, lane);
    first = false;
  }
  for (const Event& e : events) {
    const double us = static_cast<double>(e.t_ns - base) / 1000.0;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                 "\"tid\":%u,\"ts\":%.3f,"
                 "\"args\":{\"key\":%llu,\"sample_period\":%llu}}",
                 first ? "" : ",", trace_op_name(e.op), e.slice + 1, us,
                 static_cast<unsigned long long>(e.key),
                 static_cast<unsigned long long>(kTraceSampleMask + 1));
    first = false;
  }
  // Counter tracks: tid 0 keeps them grouped above the worker lanes.
  // Perfetto wants finite numbers; samples where a value is unavailable
  // (empty quantile window, absent gauge) skip that track's point rather
  // than plot a fake zero.
  const auto counter_event = [&](const char* name, std::uint64_t t_ns,
                                 double value) {
    if (!std::isfinite(value)) return;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                 "\"ts\":%.3f,\"args\":{\"value\":%.6g}}",
                 first ? "" : ",", name,
                 static_cast<double>(t_ns - base) / 1000.0, value);
    first = false;
  };
  for (const CounterPoint& p : points) {
    counter_event("delivered_per_s", p.t_ns, p.delivered_per_s);
    counter_event("submitted_per_s", p.t_ns, p.submitted_per_s);
    counter_event("shed_pct", p.t_ns, p.shed_pct);
    counter_event("p99_sojourn_us", p.t_ns, p.p99_sojourn_us);
    counter_event("p99_latency_us", p.t_ns, p.p99_latency_us);
    counter_event("rank_p90", p.t_ns, p.rank_p90);
    counter_event("in_flight", p.t_ns, p.in_flight);
    counter_event("cas_retry_delta", p.t_ns,
                  static_cast<double>(p.cas_retry));
    counter_event("lock_retry_delta", p.t_ns,
                  static_cast<double>(p.lock_retry));
  }
  std::fprintf(out, "],\"displayTimeUnit\":\"ns\"}\n");
  return events.size();
}

}  // namespace cpq::obs
