// Hardware performance counters per benchmark cell, via perf_event_open(2).
//
// Throughput deltas say *that* a cell moved; cycles/instructions/LLC-miss/
// branch-miss per operation say *why* (IPC collapse vs cache-thrash vs
// mispredict storm). Counters are opened in the bench driver thread with
// inherit=1 before a cell's worker teams are spawned, so every worker thread
// created during the cell is aggregated into the parent's count (inherited
// child values fold in when the children exit, and benchmark workers always
// join before the cell is read). Events are opened individually — not as a
// group — because PERF_FORMAT_GROUP is incompatible with inherit.
//
// Capability probing and graceful degradation are first-class: containers
// and CI runners routinely deny perf_event_open (seccomp, or
// kernel.perf_event_paranoid), and some virtualized PMUs expose only a
// subset of the generic events. Every event opens independently; an event
// that cannot be opened reads back as NaN and is reported downstream as
// JSON null — the run itself never fails. Multiplex scaling
// (time_enabled/time_running) is applied per event, so partially scheduled
// counters stay meaningful.
//
// Non-Linux builds compile the same API with every event unavailable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace cpq::obs {

class PerfCounters {
 public:
  static constexpr unsigned kNumEvents = 4;

  static const char* event_name(unsigned index) noexcept {
    static const char* const names[kNumEvents] = {
        "cycles", "instructions", "llc_misses", "branch_misses"};
    return index < kNumEvents ? names[index] : "?";
  }

  PerfCounters() { fds_.fill(-1); }
  ~PerfCounters() { close(); }

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // Open whatever events the environment grants, counters disabled. Returns
  // true when at least one event opened; false means hardware counting is
  // entirely unavailable here (the common container case).
  bool open() {
    close();
#if defined(__linux__)
    static constexpr std::uint32_t kTypes[kNumEvents] = {
        PERF_TYPE_HARDWARE, PERF_TYPE_HARDWARE, PERF_TYPE_HARDWARE,
        PERF_TYPE_HARDWARE};
    static constexpr std::uint64_t kConfigs[kNumEvents] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (unsigned i = 0; i < kNumEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.size = sizeof(attr);
      attr.type = kTypes[i];
      attr.config = kConfigs[i];
      attr.disabled = 1;
      attr.inherit = 1;  // count threads spawned after this open
      attr.exclude_kernel = 1;  // permitted at perf_event_paranoid <= 2
      attr.exclude_hv = 1;
      attr.read_format =
          PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
      const long fd = ::syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
      fds_[i] = static_cast<int>(fd);
    }
#endif
    return available();
  }

  bool available() const noexcept {
    for (const int fd : fds_) {
      if (fd >= 0) return true;
    }
    return false;
  }

  void start() noexcept {
#if defined(__linux__)
    for (const int fd : fds_) {
      if (fd < 0) continue;
      ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
#endif
  }

  void stop() noexcept {
#if defined(__linux__)
    for (const int fd : fds_) {
      if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    }
#endif
  }

  // Multiplex-scaled counts since start(), in event_name order; NaN for
  // events that are unavailable (never opened, or never scheduled).
  std::array<double, kNumEvents> read() const {
    std::array<double, kNumEvents> values;
    values.fill(std::nan(""));
#if defined(__linux__)
    for (unsigned i = 0; i < kNumEvents; ++i) {
      if (fds_[i] < 0) continue;
      struct {
        std::uint64_t value;
        std::uint64_t time_enabled;
        std::uint64_t time_running;
      } sample{};
      if (::read(fds_[i], &sample, sizeof(sample)) !=
          static_cast<ssize_t>(sizeof(sample))) {
        continue;
      }
      if (sample.time_running == 0) {
        // Enabled but never scheduled onto the PMU: no information.
        if (sample.time_enabled != 0) continue;
        values[i] = static_cast<double>(sample.value);
        continue;
      }
      values[i] = static_cast<double>(sample.value) *
                  (static_cast<double>(sample.time_enabled) /
                   static_cast<double>(sample.time_running));
    }
#endif
    return values;
  }

  void close() noexcept {
#if defined(__linux__)
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
#else
    fds_.fill(-1);
#endif
  }

 private:
  std::array<int, kNumEvents> fds_;
};

}  // namespace cpq::obs
