// Declarative service-level objectives over the telemetry stream.
//
// An SLO spec is a comma-separated list of per-sample objectives:
//
//   --slo=p99_sojourn_us<500,shed_pct<1,delivered_per_s>10000
//
// Each objective names a metric the telemetry sampler derives per snapshot
// (the closed set below — unknown names are a parse error, so typos exit 2
// at the CLI instead of silently never firing) and a strict threshold.
// Every snapshot either meets or violates each objective.
//
// On top of the per-sample bits the tracker keeps SRE-style multi-window
// burn rates: the violation fraction over a fast window (last 8 samples)
// and a slow window (last 64), each divided by the error budget (1% of
// samples may violate). An objective is *breached* — actively burning, not
// just noisy — while BOTH windows exceed the alert burn rate: the fast
// window makes the alarm react within seconds, the slow window keeps one
// stray sample from flapping it. Breach episodes (entry/exit transitions)
// and the per-sample violation mask stored in each telemetry record give
// the chaos campaign a *measured* recovery time: first post-fault sample
// where every objective holds again.
//
// Single-threaded by design: evaluate() runs on the telemetry sampler
// thread; summaries are read after stop() (or under the plane's lock).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cpq::obs {

// One `metric<threshold` / `metric>threshold` clause.
struct SloObjective {
  std::string metric;
  bool less_than = true;  // false: metric must stay ABOVE the threshold
  double threshold = 0.0;

  std::string to_string() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%c%g", metric.c_str(),
                  less_than ? '<' : '>', threshold);
    return buf;
  }
};

// The closed set of metrics an objective may reference; each is derived per
// telemetry snapshot (see TelemetryPlane::sample). Windowed quantiles are in
// microseconds, rates per second, percentages in [0, 100].
inline const char* const kSloMetricNames[] = {
    "p50_sojourn_us",  "p99_sojourn_us", "p50_latency_us", "p99_latency_us",
    "delivered_per_s", "submitted_per_s", "shed_pct",      "reject_pct",
    "rank_p90",        "in_flight",
};

inline bool known_slo_metric(const std::string& name) {
  for (const char* known : kSloMetricNames) {
    if (name == known) return true;
  }
  return false;
}

// Parse a full spec; std::nullopt on any malformed clause (empty clause,
// unknown metric, missing or trailing-garbage threshold).
inline std::optional<std::vector<SloObjective>> parse_slo_spec(
    const std::string& spec) {
  std::vector<SloObjective> objectives;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) return std::nullopt;
    const std::size_t lt = clause.find('<');
    const std::size_t gt = clause.find('>');
    if ((lt == std::string::npos) == (gt == std::string::npos)) {
      return std::nullopt;  // need exactly one comparator
    }
    const std::size_t cmp = lt != std::string::npos ? lt : gt;
    SloObjective obj;
    obj.metric = clause.substr(0, cmp);
    obj.less_than = lt != std::string::npos;
    if (!known_slo_metric(obj.metric)) return std::nullopt;
    const std::string number = clause.substr(cmp + 1);
    if (number.empty()) return std::nullopt;
    char* end = nullptr;
    obj.threshold = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size() || !std::isfinite(obj.threshold)) {
      return std::nullopt;
    }
    objectives.push_back(std::move(obj));
    if (comma == spec.size()) break;
  }
  if (objectives.empty() || objectives.size() > 32) return std::nullopt;
  return objectives;
}

class SloTracker {
 public:
  static constexpr unsigned kFastWindow = 8;
  static constexpr unsigned kSlowWindow = 64;
  // Error budget: the tolerated violation fraction. burn = fraction/budget,
  // so burn 1.0 means exactly on budget, >1 means burning it down.
  static constexpr double kErrorBudget = 0.01;
  // Both windows must burn at this rate or faster to call it a breach.
  static constexpr double kAlertBurn = 2.0;

  struct ObjectiveState {
    SloObjective objective;
    std::uint64_t samples = 0;       // evaluations with the metric available
    std::uint64_t bad = 0;           // violations, total
    std::uint64_t unavailable = 0;   // samples where the metric was absent
    std::uint64_t episodes = 0;      // breach entries
    bool breached = false;           // currently burning (both windows)
    std::uint64_t breach_start_ns = 0;  // t of the episode entry
    std::uint64_t breach_ns = 0;        // total time spent breached
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    // Rolling per-sample violation bits, newest in bit 0.
    std::uint64_t history = 0;
    std::uint64_t last_t_ns = 0;
  };

  void configure(std::vector<SloObjective> objectives) {
    states_.clear();
    for (SloObjective& obj : objectives) {
      ObjectiveState st;
      st.objective = std::move(obj);
      states_.push_back(std::move(st));
    }
  }

  bool configured() const noexcept { return !states_.empty(); }
  std::size_t size() const noexcept { return states_.size(); }
  const ObjectiveState& state(std::size_t i) const { return states_[i]; }

  // Evaluate every objective against one snapshot. `lookup(name)` returns
  // the metric value or std::nullopt when it is unavailable this sample
  // (e.g. a quantile with an empty window — counted separately, never a
  // violation). Returns the violation bitmask (bit i = objective i).
  template <typename Lookup>
  std::uint32_t evaluate(Lookup&& lookup, std::uint64_t t_ns) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      ObjectiveState& st = states_[i];
      const std::optional<double> value = lookup(st.objective.metric);
      if (!value.has_value()) {
        ++st.unavailable;
        continue;
      }
      ++st.samples;
      const bool bad = st.objective.less_than
                           ? !(*value < st.objective.threshold)
                           : !(*value > st.objective.threshold);
      st.history = (st.history << 1) | (bad ? 1 : 0);
      if (bad) {
        ++st.bad;
        mask |= (1u << i);
      }
      st.burn_fast = window_burn(st, kFastWindow);
      st.burn_slow = window_burn(st, kSlowWindow);
      const bool burning =
          st.burn_fast >= kAlertBurn && st.burn_slow >= kAlertBurn;
      if (burning && !st.breached) {
        st.breached = true;
        ++st.episodes;
        st.breach_start_ns = t_ns;
      } else if (!burning && st.breached) {
        st.breached = false;
        if (t_ns > st.breach_start_ns) {
          st.breach_ns += t_ns - st.breach_start_ns;
        }
      }
      st.last_t_ns = t_ns;
    }
    return mask;
  }

  // Total breach time including a still-open episode up to `now_ns`.
  std::uint64_t breach_ns(std::size_t i, std::uint64_t now_ns) const {
    const ObjectiveState& st = states_[i];
    std::uint64_t total = st.breach_ns;
    if (st.breached && now_ns > st.breach_start_ns) {
      total += now_ns - st.breach_start_ns;
    }
    return total;
  }

  bool any_breached() const noexcept {
    for (const ObjectiveState& st : states_) {
      if (st.breached) return true;
    }
    return false;
  }

  void dump(std::FILE* out) const {
    for (const ObjectiveState& st : states_) {
      std::fprintf(
          out,
          "[cpq-slo] %-24s bad=%llu/%llu burn_fast=%.2f burn_slow=%.2f "
          "episodes=%llu%s%s\n",
          st.objective.to_string().c_str(),
          static_cast<unsigned long long>(st.bad),
          static_cast<unsigned long long>(st.samples), st.burn_fast,
          st.burn_slow, static_cast<unsigned long long>(st.episodes),
          st.breached ? " BREACHED" : "",
          st.unavailable ? " (some samples n/a)" : "");
    }
  }

 private:
  // Violation fraction over the newest `window` samples (or all samples
  // while fewer have been seen), divided by the error budget.
  static double window_burn(const ObjectiveState& st, unsigned window) {
    const std::uint64_t n =
        st.samples < window ? st.samples : static_cast<std::uint64_t>(window);
    if (n == 0) return 0.0;
    std::uint64_t bits = st.history;
    if (n < 64) bits &= (std::uint64_t{1} << n) - 1;
    unsigned bad = 0;
    while (bits != 0) {
      bits &= bits - 1;
      ++bad;
    }
    return static_cast<double>(bad) / static_cast<double>(n) / kErrorBudget;
  }

  std::vector<ObjectiveState> states_;
};

}  // namespace cpq::obs
