// Process-wide metrics registry: per-thread contention counters and sampled
// operation-trace rings, mergeable into one report.
//
// Two consumers:
//   * the benchmarks (--metrics): contention counters explain *why* a
//     throughput cell moved — a CAS-retry or lock-retry delta localizes a
//     scalability regression to a seam without a profiler;
//   * the progress watchdog (validation/watchdog.hpp): on a stall it dumps
//     every thread's counters plus the last sampled operations per thread,
//     turning an exit-86 abort into a diagnosable report.
//
// Design: a fixed array of cache-line-aligned slices; each recording thread
// claims one on first use (thread_local handle) and releases it at thread
// exit after folding its counts into a retired-totals accumulator — the
// same orphan-adoption idea as the EBR participant slots, so benchmarks
// that spawn thousands of short-lived workers never exhaust the table.
// Counters are single-writer relaxed atomics updated with the same
// store(load+1) idiom as validation::WorkerProgress::tick: no lock prefix
// on the hot path, and concurrent dump/total readers are race-free.
//
// Cost model (mirrors CPQ_INJECT in validation/fault_injection.hpp):
//   * CPQ_METRICS_ENABLED undefined: CPQ_COUNT / CPQ_TRACE_OP expand to
//     ((void)0) — no code at the hook site. The registry type itself is
//     always compiled (the watchdog dump and the tests use it directly).
//   * CPQ_METRICS_ENABLED defined (default; -DCPQ_METRICS=OFF at configure
//     time removes it): each hook is a thread-local lookup plus one relaxed
//     load/store pair. Hooks sit only on cold paths (retry loops, backoff,
//     reclamation) so the uncontended fast path is unchanged; traces sample
//     one operation in 64.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>

#include "obs/rank_estimator.hpp"
#include "platform/cache.hpp"
#include "platform/timing.hpp"

namespace cpq::obs {

enum class Counter : unsigned {
  kCasRetry = 0,        // lock-free publish retries (skiplist, klsm, hunt)
  kLockRetry,           // spinlock acquisitions that found the lock held
  kBackoffPause,        // Backoff::pause() calls (contention dwell time)
  kEbrRetire,           // nodes deferred to epoch-based reclamation
  kEbrFree,             // deferred nodes actually reclaimed
  kEbrAdvance,          // global epoch advances
  kHazardScan,          // hazard-pointer scans
  kHazardRetire,        // nodes deferred to hazard-pointer reclamation
  kServiceFlush,        // insertion-buffer flushes (priority service)
  kServiceDeadlineFlush,  // flushes forced by the deadline
  kServiceRefill,       // deletion-buffer refills from the routed shard
  kServiceSteal,        // refills served by stealing from another shard
  kServiceReject,       // admission rejections
  kServiceShed,         // tasks dropped past their deadline
  kServiceTierReject,   // rejections from the tiered-admission gate
  kServiceRetry,        // submit_with_retry re-attempts
  kServiceBreakerTrip,  // per-shard circuit-breaker trips
  kServiceReroute,      // batches steered away from an open breaker
  kCounterCount,
};

inline constexpr unsigned kNumCounters =
    static_cast<unsigned>(Counter::kCounterCount);

inline const char* counter_name(unsigned index) noexcept {
  static const char* const names[kNumCounters] = {
      "cas_retry",      "lock_retry",    "backoff_pause",
      "ebr_retire",     "ebr_free",      "ebr_advance",
      "hazard_scan",    "hazard_retire", "service_flush",
      "service_deadline_flush", "service_refill", "service_steal",
      "service_reject", "service_shed", "service_tier_reject",
      "service_retry", "service_breaker_trip", "service_reroute",
  };
  return index < kNumCounters ? names[index] : "?";
}

// Sampled-operation codes; numerically identical to validation::LastOp so
// harness call sites translate by cast.
enum class TraceOp : std::uint8_t {
  kNone = 0,
  kInsert = 1,
  kDeleteHit = 2,
  kDeleteEmpty = 3,
};

inline const char* trace_op_name(std::uint8_t op) noexcept {
  switch (op) {
    case 1: return "insert";
    case 2: return "delete_hit";
    case 3: return "delete_empty";
    default: return "none";
  }
}

// Trace one operation in 2^6: cheap enough to leave on, frequent enough
// that a stalled thread's ring still shows its recent history.
inline constexpr std::uint64_t kTraceSampleMask = 63;

class MetricsRegistry {
 public:
  static constexpr unsigned kMaxSlices = 256;
  static constexpr unsigned kTraceCapacity = 32;

  struct TraceEvent {
    std::atomic<std::uint64_t> timestamp{0};
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint8_t> op{0};
  };

  struct alignas(kCacheLineSize) Slice {
    std::atomic<std::uint64_t> counters[kNumCounters] = {};
    TraceEvent trace[kTraceCapacity];
    std::atomic<std::uint64_t> trace_count{0};
    std::atomic<bool> in_use{false};

    // Single-writer increment (the owning thread); relaxed load/store pairs
    // keep the hot path free of locked instructions while remaining
    // race-free against concurrent dump()/totals() readers.
    void count(Counter c, std::uint64_t n = 1) noexcept {
      auto& cell = counters[static_cast<unsigned>(c)];
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }

    void trace_record(TraceOp op, std::uint64_t key,
                      std::uint64_t timestamp) noexcept {
      const std::uint64_t i = trace_count.load(std::memory_order_relaxed);
      TraceEvent& e = trace[i % kTraceCapacity];
      e.timestamp.store(timestamp, std::memory_order_relaxed);
      e.key.store(key, std::memory_order_relaxed);
      e.op.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
      trace_count.store(i + 1, std::memory_order_relaxed);
    }
  };

  // Leaky singleton: never destroyed, so thread-exit folding (TLS handle
  // destructors) can run at any point of process teardown.
  static MetricsRegistry& global() {
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
  }

  // The calling thread's slice, claimed on first use. If all slices are
  // taken the shared overflow slice is returned: counts recorded there may
  // race (best effort), but nothing is dropped structurally.
  Slice& local_slice() {
    thread_local SliceHandle handle;
    if (handle.slice == nullptr || handle.registry != this) {
      handle.release();
      handle.registry = this;
      handle.slice = &overflow_;
      handle.owned = false;
      for (unsigned i = 0; i < kMaxSlices; ++i) {
        bool expected = false;
        if (slices_[i].in_use.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          handle.slice = &slices_[i];
          handle.owned = true;
          break;
        }
      }
    }
    return *handle.slice;
  }

  std::array<std::uint64_t, kNumCounters> totals() const {
    std::array<std::uint64_t, kNumCounters> sums{};
    for (unsigned c = 0; c < kNumCounters; ++c) {
      sums[c] = retired_[c].load(std::memory_order_relaxed) +
                overflow_.counters[c].load(std::memory_order_relaxed);
      for (unsigned i = 0; i < kMaxSlices; ++i) {
        sums[c] += slices_[i].counters[c].load(std::memory_order_relaxed);
      }
    }
    return sums;
  }

  std::uint64_t total(Counter c) const {
    return totals()[static_cast<unsigned>(c)];
  }

  // Total queue operations executed by the current benchmark cell. Recorded
  // once per repetition by the harness after its workers join (never on the
  // hot path) so per-op derived metrics — hardware-counter events per
  // operation, trace sampling coverage — have a denominator.
  void add_cell_ops(std::uint64_t n) noexcept {
    cell_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t cell_ops() const noexcept {
    return cell_ops_.load(std::memory_order_relaxed);
  }

  // Visit every sampled trace event across all live rings, oldest first
  // within each slice. `fn(slice_index, op, key, timestamp)` — used by the
  // Chrome trace exporter; reads are racy-but-atomic like dump().
  template <typename Fn>
  void visit_trace_events(Fn&& fn) const {
    for (unsigned i = 0; i < kMaxSlices; ++i) {
      visit_slice_events(slices_[i], i, fn);
    }
    visit_slice_events(overflow_, kMaxSlices, fn);
  }

  // Zero every counter and trace ring. Call between benchmark cells, while
  // no measurement threads are recording (increments racing a reset may be
  // lost, nothing worse).
  void reset() {
    cell_ops_.store(0, std::memory_order_relaxed);
    for (unsigned c = 0; c < kNumCounters; ++c) {
      retired_[c].store(0, std::memory_order_relaxed);
      overflow_.counters[c].store(0, std::memory_order_relaxed);
    }
    overflow_.trace_count.store(0, std::memory_order_relaxed);
    for (unsigned i = 0; i < kMaxSlices; ++i) {
      for (unsigned c = 0; c < kNumCounters; ++c) {
        slices_[i].counters[c].store(0, std::memory_order_relaxed);
      }
      slices_[i].trace_count.store(0, std::memory_order_relaxed);
    }
  }

  // Counter totals plus every live trace ring, newest event first. Safe to
  // call from the watchdog while worker threads are still recording (the
  // snapshot is racy but every read is an atomic load).
  void dump(std::FILE* out) const {
    const auto sums = totals();
    std::fprintf(out, "[cpq-metrics] counters:");
    for (unsigned c = 0; c < kNumCounters; ++c) {
      std::fprintf(out, " %s=%llu", counter_name(c),
                   static_cast<unsigned long long>(sums[c]));
    }
    std::fprintf(out, "\n");
    for (unsigned i = 0; i < kMaxSlices; ++i) {
      dump_trace(out, slices_[i], i);
    }
    dump_trace(out, overflow_, kMaxSlices);
  }

 private:
  struct SliceHandle {
    MetricsRegistry* registry = nullptr;
    Slice* slice = nullptr;
    bool owned = false;

    ~SliceHandle() { release(); }

    // Fold this thread's counts into the retired accumulator and free the
    // slot for the next worker. The trace ring survives the thread: the
    // end-of-run exporters (--dump-traces, --trace-out) read the rings after
    // every worker has joined, so a slice keeps its sampled tail until
    // reset() or until a successor thread claims the slot and records over
    // it (lanes are per-slice, not per-thread, and are labeled as such).
    void release() noexcept {
      if (slice == nullptr || !owned) {
        slice = nullptr;
        return;
      }
      for (unsigned c = 0; c < kNumCounters; ++c) {
        const std::uint64_t v =
            slice->counters[c].load(std::memory_order_relaxed);
        if (v) registry->retired_[c].fetch_add(v, std::memory_order_relaxed);
        slice->counters[c].store(0, std::memory_order_relaxed);
      }
      slice->in_use.store(false, std::memory_order_release);
      slice = nullptr;
    }
  };

  template <typename Fn>
  static void visit_slice_events(const Slice& slice, unsigned index,
                                 Fn&& fn) {
    const std::uint64_t n = slice.trace_count.load(std::memory_order_relaxed);
    if (n == 0) return;
    const std::uint64_t shown = n < kTraceCapacity ? n : kTraceCapacity;
    for (std::uint64_t k = shown; k >= 1; --k) {
      const TraceEvent& e = slice.trace[(n - k) % kTraceCapacity];
      fn(index, e.op.load(std::memory_order_relaxed),
         e.key.load(std::memory_order_relaxed),
         e.timestamp.load(std::memory_order_relaxed));
    }
  }

  static void dump_trace(std::FILE* out, const Slice& slice,
                         unsigned index) {
    const std::uint64_t n = slice.trace_count.load(std::memory_order_relaxed);
    if (n == 0) return;
    std::fprintf(out,
                 "[cpq-metrics] thread-slice %u: %llu sampled ops, "
                 "newest first:\n",
                 index, static_cast<unsigned long long>(n));
    const std::uint64_t shown = n < kTraceCapacity ? n : kTraceCapacity;
    for (std::uint64_t k = 1; k <= shown; ++k) {
      const TraceEvent& e = slice.trace[(n - k) % kTraceCapacity];
      std::fprintf(
          out, "[cpq-metrics]   %-12s key=%llu ts=%llu\n",
          trace_op_name(e.op.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              e.key.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              e.timestamp.load(std::memory_order_relaxed)));
    }
  }

  Slice slices_[kMaxSlices];
  Slice overflow_;
  std::atomic<std::uint64_t> retired_[kNumCounters] = {};
  std::atomic<std::uint64_t> cell_ops_{0};
};

// Convenience wrappers used by the hook macros (and directly by tests and
// the forced-stall diagnostics path, which work whether or not the macros
// are compiled in).
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  MetricsRegistry::global().local_slice().count(c, n);
}

inline void trace(TraceOp op, std::uint64_t key) noexcept {
  MetricsRegistry::global().local_slice().trace_record(op, key,
                                                       fast_timestamp());
  // Feed the online rank-error estimator from the same sampling seam. The
  // check is one relaxed load on the already-sampled (1-in-64) path; the
  // estimator is armed only for --metrics runs of queues with a rank bound.
  RankEstimator& estimator = RankEstimator::global();
  if (estimator.enabled()) {
    if (op == TraceOp::kInsert) {
      estimator.observe_insert(key);
    } else if (op == TraceOp::kDeleteHit) {
      estimator.observe_delete(key);
    }
  }
}

}  // namespace cpq::obs

// Hook macros. Call sites name the Counter enumerator directly:
//   CPQ_COUNT(kLockRetry);
//   CPQ_COUNT_N(kEbrFree, batch.size());
//   CPQ_TRACE_OP(ops, ::cpq::obs::TraceOp::kInsert, key);
#if defined(CPQ_METRICS_ENABLED)

#define CPQ_COUNT(counter) ::cpq::obs::count(::cpq::obs::Counter::counter)
#define CPQ_COUNT_N(counter, n) \
  ::cpq::obs::count(::cpq::obs::Counter::counter, (n))
// Samples one operation in (kTraceSampleMask + 1); `ops` is the caller's
// running operation count, so the thread-local lookup only happens on the
// sampled iterations.
#define CPQ_TRACE_OP(ops, opcode, key)                        \
  do {                                                        \
    if ((((ops)) & ::cpq::obs::kTraceSampleMask) == 0) {      \
      ::cpq::obs::trace((opcode), (key));                     \
    }                                                         \
  } while (0)

#else  // !CPQ_METRICS_ENABLED

#define CPQ_COUNT(counter) ((void)0)
#define CPQ_COUNT_N(counter, n) ((void)0)
#define CPQ_TRACE_OP(ops, opcode, key) ((void)0)

#endif  // CPQ_METRICS_ENABLED
