// Live telemetry plane: a background sampler that turns the process's
// point-in-time observability (counter totals, histograms, service gauges,
// rank estimate, arena stats) into a *time series*, so overload onset,
// breaker flaps, and shed storms are visible as trajectories instead of
// being averaged away in end-of-run aggregates.
//
// Architecture:
//
//   workers ──> AtomicLogHistogram feeds (latency / sojourn, relaxed adds)
//           ──> sojourn stamp table (sampled submit->delivery matching)
//   subsystems ──> GaugeSet providers (service shard stats, bench counters)
//
//   TelemetrySampler thread (started by --telemetry-hz > 0):
//     every 1/hz seconds, under the plane lock:
//       counter deltas   <- MetricsRegistry totals - previous snapshot
//       window quantiles <- histogram bucket deltas (HistogramWindow)
//       gauges           <- registered providers (instantaneous/cumulative)
//       derived rates    <- gauge deltas / interval (delivered_per_s, ...)
//       rank estimate    <- RankEstimator snapshot (cumulative)
//       arena deltas     <- mm::BlockPool stats - previous snapshot
//       SLO evaluation   <- SloTracker over the derived metrics
//     ... into one TelemetryRecord in a preallocated ring.
//
// Exports (all offline, after stop()):
//   * write_jsonl      — JSON Lines, schema_version=4, one record per line
//                        (tools/check_timeseries.py validates)
//   * Chrome counter tracks — obs/chrome_trace.hpp merges the ring into the
//                        --trace-out stream as ph:"C" events
//   * write_prometheus — text exposition dump of the final totals
//   * dump_recent      — flight-recorder tail for watchdog stall dumps
//
// Cost model: with the plane inactive (default) every hot-path feed is one
// acquire load of `active_` and a branch; no sampler thread exists, no
// memory beyond the (lazily-constructed) singleton. Timestamps are
// monotonic_ns (platform/clock.hpp) so records align with Chrome trace op
// events and the service layer's microsecond deadlines.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mm/arena.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/rank_estimator.hpp"
#include "obs/slo.hpp"
#include "platform/clock.hpp"
#include "platform/timing.hpp"

namespace cpq::obs {

// Schema stamped on every JSONL time-series line. Independent artifact from
// the per-cell bench records (bench_framework/json_out.hpp) but kept on the
// same version counter: both jumped to 4 when the telemetry plane landed.
inline constexpr unsigned kTimeseriesSchemaVersion = 4;

// Fixed-capacity named-gauge vector filled by providers each sample. Names
// MUST be string literals (or otherwise outlive the plane): records store
// the pointers, not copies.
class GaugeSet {
 public:
  static constexpr unsigned kCapacity = 24;

  void set(const char* name, double value) noexcept {
    for (unsigned i = 0; i < size_; ++i) {
      if (std::strcmp(entries_[i].name, name) == 0) {
        entries_[i].value = value;
        return;
      }
    }
    if (size_ < kCapacity) {
      entries_[size_].name = name;
      entries_[size_].value = value;
      ++size_;
    }
  }

  unsigned size() const noexcept { return size_; }
  const char* name(unsigned i) const noexcept { return entries_[i].name; }
  double value(unsigned i) const noexcept { return entries_[i].value; }

  std::optional<double> find(const char* name) const noexcept {
    for (unsigned i = 0; i < size_; ++i) {
      if (std::strcmp(entries_[i].name, name) == 0) {
        return entries_[i].value;
      }
    }
    return std::nullopt;
  }

  void clear() noexcept { size_ = 0; }

 private:
  struct Entry {
    const char* name = "";
    double value = 0.0;
  };
  Entry entries_[kCapacity];
  unsigned size_ = 0;
};

// One sampling interval. Counter/pool fields are deltas over the interval;
// gauges and the rank estimate are cumulative/instantaneous at sample time.
// Rates derived from absent gauges are NaN in memory and exported as null
// (never NaN) by the writers.
struct TelemetryRecord {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;         // monotonic_ns timeline
  std::uint64_t interval_ns = 0;  // since the previous sample
  std::array<std::uint64_t, kNumCounters> counters{};  // deltas
  HistogramWindow latency;  // consumer delete_min latency, ns
  HistogramWindow sojourn;  // submit->delivery sojourn, ns
  // RankEstimator cumulative snapshot (zero when not armed).
  std::uint64_t rank_samples = 0;
  double rank_p50 = 0.0;
  double rank_p90 = 0.0;
  std::uint64_t rank_max = 0;
  std::uint64_t rank_violations = 0;
  // mm::BlockPool deltas.
  std::uint64_t pool_fresh = 0;
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t pool_oversize = 0;
  // Derived per-interval rates (NaN = underlying gauges unavailable).
  double delivered_per_s = std::nan("");
  double submitted_per_s = std::nan("");
  double shed_pct = std::nan("");
  double reject_pct = std::nan("");
  std::uint32_t slo_breached = 0;  // per-sample violation mask (0 = no SLO)
  GaugeSet gauges;
};

namespace timeseries_detail {

// Print a JSON number; non-finite values become null so NaN can never leak
// into an artifact (tools/check_timeseries.py treats a NaN token as fatal).
inline void json_number(std::FILE* out, double v) {
  if (std::isfinite(v)) {
    std::fprintf(out, "%.17g", v);
  } else {
    std::fputs("null", out);
  }
}

// Sampled submit->delivery stamp table: producers publish (id, tick) for one
// task in kSampleMask+1, consumers match on delivery and feed the sojourn
// histogram. Open-addressed single-slot hashing; a slot overwritten between
// submit and delivery just drops that sample (the id check fails). All
// accesses are atomics: release on the id publish orders the tick store
// before it, so a matching reader sees the right stamp.
class SojournStampTable {
 public:
  static constexpr std::uint64_t kSampleMask = 63;  // 1 task in 64
  static constexpr unsigned kSlots = 2048;

  bool sampled(std::uint64_t id) const noexcept {
    return (id & kSampleMask) == 0;
  }

  void submit(std::uint64_t id, std::uint64_t tick) noexcept {
    Slot& s = slots_[slot_index(id)];
    s.tick.store(tick, std::memory_order_relaxed);
    s.id.store(id, std::memory_order_release);
  }

  // Returns the submit tick if `id` is still stamped, clearing the slot.
  std::optional<std::uint64_t> match(std::uint64_t id) noexcept {
    Slot& s = slots_[slot_index(id)];
    if (s.id.load(std::memory_order_acquire) != id) return std::nullopt;
    const std::uint64_t tick = s.tick.load(std::memory_order_relaxed);
    s.id.store(0, std::memory_order_relaxed);
    return tick;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.id.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> tick{0};
  };

  static unsigned slot_index(std::uint64_t id) noexcept {
    return static_cast<unsigned>((id * 0x9E3779B97F4A7C15ull) >>
                                 (64 - 11));  // kSlots = 2^11
  }

  Slot slots_[kSlots];
};

}  // namespace timeseries_detail

class TelemetryPlane {
 public:
  using Provider = std::function<void(GaugeSet&)>;
  static constexpr unsigned kMaxProviders = 4;
  static constexpr std::size_t kDefaultCapacity = 4096;

  // Leaky singleton, same rationale as MetricsRegistry: feeds may fire from
  // worker TLS destructors at any point of teardown.
  static TelemetryPlane& global() {
    static TelemetryPlane* plane = new TelemetryPlane();
    return *plane;
  }

  bool active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

  // Install the SLO objectives evaluated per sample. Call before start().
  void set_slo(std::vector<SloObjective> objectives) {
    std::lock_guard<std::mutex> lock(mutex_);
    slo_.configure(std::move(objectives));
  }

  // Begin sampling at `hz` (clamped to (0, 10000]) into a ring of
  // `capacity` records (oldest overwritten; `dropped()` counts casualties).
  // Returns false if already running. Pays the one-time TSC calibration
  // here so no hot path ever does.
  bool start(double hz, std::size_t capacity = kDefaultCapacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sampler_.joinable() || hz <= 0.0) return false;
    if (hz > 10000.0) hz = 10000.0;
    if (capacity < 64) capacity = 64;
    ring_.assign(capacity, TelemetryRecord{});
    count_ = 0;
    dropped_ = 0;
    ns_per_tick_.store(tsc_clock().ns_per_tick(), std::memory_order_relaxed);
    period_ns_ = static_cast<std::uint64_t>(1e9 / hz);
    // Baseline snapshots: the first record's deltas cover only the first
    // interval, and the conservation invariant (sum of deltas == final
    // totals - totals at start) holds from here.
    prev_counters_ = MetricsRegistry::global().totals();
    latency_feed_.load_buckets(prev_lat_.data());
    sojourn_feed_.load_buckets(prev_soj_.data());
    const mm::BlockPool::Stats pool = mm::BlockPool::global().stats();
    prev_pool_ = pool;
    prev_gauges_.clear();
    collect_gauges(prev_gauges_);
    prev_t_ns_ = start_t_ns_ = monotonic_ns();
    stop_requested_ = false;
    active_.store(true, std::memory_order_release);
    sampler_ = std::thread([this] { run(); });
    return true;
  }

  // Stop the sampler and take one final sample so the tail of the run is
  // always covered. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!sampler_.joinable()) return;
      stop_requested_ = true;
    }
    cv_.notify_all();
    sampler_.join();
    active_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mutex_);
    sample_locked();
  }

  // Clear ring, feeds, and SLO state (objectives are re-armed empty). For
  // tests and between independent runs in one process.
  void reset() {
    stop();
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    count_ = 0;
    dropped_ = 0;
    latency_feed_.reset();
    sojourn_feed_.reset();
    stamps_.reset();
    slo_.configure({});
  }

  // ---- gauge providers ------------------------------------------------

  int register_provider(Provider provider) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (unsigned i = 0; i < kMaxProviders; ++i) {
      if (!providers_[i]) {
        providers_[i] = std::move(provider);
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void unregister_provider(int handle) {
    if (handle < 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<unsigned>(handle) < kMaxProviders) {
      providers_[handle] = nullptr;
    }
  }

  // ---- hot-path feeds (no-ops while inactive) -------------------------

  void record_latency_ns(std::uint64_t ns) noexcept {
    if (!active()) return;
    latency_feed_.record(ns);
  }

  void record_latency_ticks(std::uint64_t ticks) noexcept {
    if (!active()) return;
    latency_feed_.record(static_cast<std::uint64_t>(
        static_cast<double>(ticks) *
        ns_per_tick_.load(std::memory_order_relaxed)));
  }

  void record_sojourn_ns(std::uint64_t ns) noexcept {
    if (!active()) return;
    sojourn_feed_.record(ns);
  }

  // Sampled sojourn stamps: both sides gate on the same 1-in-64 id mask, so
  // the non-sampled 63/64 pay one branch each.
  void note_submit(std::uint64_t id, std::uint64_t tick) noexcept {
    if (!active() || !stamps_.sampled(id)) return;
    stamps_.submit(id, tick);
  }

  void note_delivery(std::uint64_t id, std::uint64_t tick) noexcept {
    if (!active() || !stamps_.sampled(id)) return;
    if (const auto submit_tick = stamps_.match(id)) {
      if (tick > *submit_tick) {
        sojourn_feed_.record(static_cast<std::uint64_t>(
            static_cast<double>(tick - *submit_tick) *
            ns_per_tick_.load(std::memory_order_relaxed)));
      }
    }
  }

  // ---- record access --------------------------------------------------

  std::uint64_t sample_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  // Visit retained records oldest -> newest under the plane lock.
  template <typename Fn>
  void visit_records(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    visit_locked(fn);
  }

  // SLO accessors; take the lock, so safe against a live sampler.
  bool slo_configured() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slo_.configured();
  }

  template <typename Fn>
  void with_slo(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    fn(slo_);
  }

  // ---- exports --------------------------------------------------------

  // JSON Lines (schema v4); returns lines written.
  std::size_t write_jsonl(std::FILE* out) const {
    std::size_t lines = 0;
    visit_records([&](const TelemetryRecord& r) {
      std::fprintf(out,
                   "{\"schema_version\":%u,\"kind\":\"telemetry\","
                   "\"seq\":%llu,\"t_ns\":%llu,\"interval_ns\":%llu",
                   kTimeseriesSchemaVersion,
                   static_cast<unsigned long long>(r.seq),
                   static_cast<unsigned long long>(r.t_ns),
                   static_cast<unsigned long long>(r.interval_ns));
      write_window(out, "latency", r.latency);
      write_window(out, "sojourn", r.sojourn);
      std::fprintf(out,
                   ",\"rank\":{\"samples\":%llu,\"p50\":",
                   static_cast<unsigned long long>(r.rank_samples));
      timeseries_detail::json_number(out, r.rank_p50);
      std::fputs(",\"p90\":", out);
      timeseries_detail::json_number(out, r.rank_p90);
      std::fprintf(out, ",\"max\":%llu,\"violations\":%llu}",
                   static_cast<unsigned long long>(r.rank_max),
                   static_cast<unsigned long long>(r.rank_violations));
      std::fprintf(
          out,
          ",\"pool\":{\"fresh\":%llu,\"reused\":%llu,\"recycled\":%llu,"
          "\"oversize\":%llu}",
          static_cast<unsigned long long>(r.pool_fresh),
          static_cast<unsigned long long>(r.pool_reused),
          static_cast<unsigned long long>(r.pool_recycled),
          static_cast<unsigned long long>(r.pool_oversize));
      std::fputs(",\"rates\":{\"delivered_per_s\":", out);
      timeseries_detail::json_number(out, r.delivered_per_s);
      std::fputs(",\"submitted_per_s\":", out);
      timeseries_detail::json_number(out, r.submitted_per_s);
      std::fputs(",\"shed_pct\":", out);
      timeseries_detail::json_number(out, r.shed_pct);
      std::fputs(",\"reject_pct\":", out);
      timeseries_detail::json_number(out, r.reject_pct);
      std::fprintf(out, "},\"slo_breached\":%u,\"counters\":{",
                   r.slo_breached);
      for (unsigned c = 0; c < kNumCounters; ++c) {
        std::fprintf(out, "%s\"%s\":%llu", c == 0 ? "" : ",",
                     counter_name(c),
                     static_cast<unsigned long long>(r.counters[c]));
      }
      std::fputs("},\"gauges\":{", out);
      for (unsigned g = 0; g < r.gauges.size(); ++g) {
        std::fprintf(out, "%s\"%s\":", g == 0 ? "" : ",", r.gauges.name(g));
        timeseries_detail::json_number(out, r.gauges.value(g));
      }
      std::fputs("}}\n", out);
      ++lines;
    });
    return lines;
  }

  // Prometheus text exposition of the end-of-run state: cumulative counter
  // totals, the last gauge snapshot, and SLO accounting. A dump, not a
  // scrape endpoint — the names/labels are scrape-shaped for when one grows.
  void write_prometheus(std::FILE* out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs("# TYPE cpq_counter_total counter\n", out);
    for (unsigned c = 0; c < kNumCounters; ++c) {
      std::fprintf(out, "cpq_counter_total{counter=\"%s\"} %llu\n",
                   counter_name(c),
                   static_cast<unsigned long long>(prev_counters_[c]));
    }
    std::fprintf(out,
                 "# TYPE cpq_telemetry_samples_total counter\n"
                 "cpq_telemetry_samples_total %llu\n"
                 "# TYPE cpq_telemetry_dropped_total counter\n"
                 "cpq_telemetry_dropped_total %llu\n",
                 static_cast<unsigned long long>(count_),
                 static_cast<unsigned long long>(dropped_));
    std::fputs("# TYPE cpq_gauge gauge\n", out);
    for (unsigned g = 0; g < prev_gauges_.size(); ++g) {
      const double v = prev_gauges_.value(g);
      std::fprintf(out, "cpq_gauge{name=\"%s\"} %.17g\n",
                   prev_gauges_.name(g), std::isfinite(v) ? v : 0.0);
    }
    if (slo_.configured()) {
      std::fputs("# TYPE cpq_slo_bad_samples_total counter\n", out);
      for (std::size_t i = 0; i < slo_.size(); ++i) {
        const SloTracker::ObjectiveState& st = slo_.state(i);
        std::fprintf(out,
                     "cpq_slo_bad_samples_total{objective=\"%s\"} %llu\n",
                     st.objective.to_string().c_str(),
                     static_cast<unsigned long long>(st.bad));
      }
      std::fputs("# TYPE cpq_slo_breach_episodes_total counter\n", out);
      for (std::size_t i = 0; i < slo_.size(); ++i) {
        const SloTracker::ObjectiveState& st = slo_.state(i);
        std::fprintf(
            out, "cpq_slo_breach_episodes_total{objective=\"%s\"} %llu\n",
            st.objective.to_string().c_str(),
            static_cast<unsigned long long>(st.episodes));
      }
    }
  }

  // Flight-recorder tail: the newest `n` records, compact, for watchdog
  // stall dumps. Prints nothing when the plane never sampled.
  void dump_recent(std::FILE* out, unsigned n = 8) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return;
    std::fprintf(out,
                 "[cpq-telemetry] flight recorder: %llu samples total, "
                 "newest %u:\n",
                 static_cast<unsigned long long>(count_),
                 n < count_ ? n : static_cast<unsigned>(count_));
    const std::uint64_t retained =
        count_ < ring_.size() ? count_ : ring_.size();
    const std::uint64_t show = n < retained ? n : retained;
    for (std::uint64_t k = show; k >= 1; --k) {
      const TelemetryRecord& r = ring_[(count_ - k) % ring_.size()];
      std::fprintf(out,
                   "[cpq-telemetry]   seq=%llu t=+%.3fs dt=%.1fms",
                   static_cast<unsigned long long>(r.seq),
                   static_cast<double>(r.t_ns - start_t_ns_) / 1e9,
                   static_cast<double>(r.interval_ns) / 1e6);
      if (std::isfinite(r.delivered_per_s)) {
        std::fprintf(out, " delivered/s=%.0f", r.delivered_per_s);
      }
      if (r.sojourn.count != 0) {
        std::fprintf(out, " p99_sojourn_us=%.0f",
                     static_cast<double>(r.sojourn.p99) / 1000.0);
      }
      if (r.latency.count != 0) {
        std::fprintf(out, " p99_latency_us=%.0f",
                     static_cast<double>(r.latency.p99) / 1000.0);
      }
      if (std::isfinite(r.shed_pct) && r.shed_pct > 0.0) {
        std::fprintf(out, " shed_pct=%.2f", r.shed_pct);
      }
      if (r.slo_breached != 0) {
        std::fprintf(out, " slo_breached=0x%x", r.slo_breached);
      }
      for (unsigned c = 0; c < kNumCounters; ++c) {
        if (r.counters[c] != 0) {
          std::fprintf(out, " %s=+%llu", counter_name(c),
                       static_cast<unsigned long long>(r.counters[c]));
        }
      }
      std::fputc('\n', out);
    }
    if (slo_.configured()) slo_.dump(out);
  }

  std::uint64_t start_t_ns() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return start_t_ns_;
  }

 private:
  TelemetryPlane() = default;

  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
      const auto wake = cv_.wait_for(
          lock, std::chrono::nanoseconds(period_ns_),
          [this] { return stop_requested_; });
      if (wake) break;
      sample_locked();
    }
  }

  void collect_gauges(GaugeSet& gauges) {
    for (unsigned i = 0; i < kMaxProviders; ++i) {
      if (providers_[i]) providers_[i](gauges);
    }
  }

  // One snapshot; caller holds mutex_.
  void sample_locked() {
    if (ring_.empty()) return;
    TelemetryRecord& r = ring_[count_ % ring_.size()];
    if (count_ >= ring_.size()) ++dropped_;
    r = TelemetryRecord{};
    r.seq = count_;
    r.t_ns = monotonic_ns();
    // A degenerate interval (clock granularity) still advances by 1 ns so
    // per-record timestamps stay strictly monotonic for the validators.
    if (r.t_ns <= prev_t_ns_) r.t_ns = prev_t_ns_ + 1;
    r.interval_ns = r.t_ns - prev_t_ns_;
    const double dt_s = static_cast<double>(r.interval_ns) / 1e9;

    // Contention counter deltas.
    const auto totals = MetricsRegistry::global().totals();
    for (unsigned c = 0; c < kNumCounters; ++c) {
      r.counters[c] = totals[c] - prev_counters_[c];
    }
    prev_counters_ = totals;

    // Histogram windows.
    std::array<std::uint64_t, LogHistogram::kBuckets>& lat = scratch_;
    latency_feed_.load_buckets(lat.data());
    r.latency = HistogramWindow::from_delta(lat.data(), prev_lat_.data());
    prev_lat_ = lat;
    sojourn_feed_.load_buckets(lat.data());
    r.sojourn = HistogramWindow::from_delta(lat.data(), prev_soj_.data());
    prev_soj_ = lat;

    // Rank estimate (cumulative; zeros when not armed).
    const RankEstimator& estimator = RankEstimator::global();
    if (estimator.enabled()) {
      const RankEstimator::Snapshot rank = estimator.snapshot();
      r.rank_samples = rank.samples;
      r.rank_p50 = rank.p50;
      r.rank_p90 = rank.p90;
      r.rank_max = rank.max;
      r.rank_violations = rank.violations;
    }

    // Arena pool deltas (global atomics + the sampler thread's own locals;
    // still-running workers' tallies fold in when they exit).
    const mm::BlockPool::Stats pool = mm::BlockPool::global().stats();
    r.pool_fresh = pool.fresh - prev_pool_.fresh;
    r.pool_reused = pool.reused - prev_pool_.reused;
    r.pool_recycled = pool.recycled - prev_pool_.recycled;
    r.pool_oversize = pool.oversize - prev_pool_.oversize;
    prev_pool_ = pool;

    // Gauges + derived rates.
    collect_gauges(r.gauges);
    const auto rate_of = [&](const char* name) {
      const auto now = r.gauges.find(name);
      const auto before = prev_gauges_.find(name);
      if (!now || !before || dt_s <= 0.0) return std::nan("");
      return (*now - *before) / dt_s;
    };
    const auto pct_of = [&](const char* num_name, double denom_extra,
                            const char* denom_name) {
      const auto num_now = r.gauges.find(num_name);
      const auto num_before = prev_gauges_.find(num_name);
      const auto den_now = r.gauges.find(denom_name);
      const auto den_before = prev_gauges_.find(denom_name);
      if (!num_now || !num_before || !den_now || !den_before) {
        return std::nan("");
      }
      const double num = *num_now - *num_before;
      const double den = *den_now - *den_before + denom_extra;
      if (den <= 0.0) return num > 0.0 ? 100.0 : 0.0;
      return 100.0 * num / den;
    };
    r.delivered_per_s = rate_of("delivered");
    r.submitted_per_s = rate_of("submitted");
    r.shed_pct = pct_of("shed", 0.0, "submitted");
    {
      // reject_pct denominator is submitted + rejected over the interval
      // (a rejected task was never submitted, so it must join the base).
      const auto rej_now = r.gauges.find("rejected");
      const auto rej_before = prev_gauges_.find("rejected");
      if (rej_now && rej_before) {
        const double rejected_delta = *rej_now - *rej_before;
        r.reject_pct = pct_of("rejected", rejected_delta, "submitted");
      }
    }
    prev_gauges_ = r.gauges;

    // SLO evaluation over this sample's derived metrics.
    if (slo_.configured()) {
      const auto lookup =
          [&](const std::string& name) -> std::optional<double> {
        const auto windowed = [](const HistogramWindow& w,
                                 std::uint64_t v) -> std::optional<double> {
          if (w.count == 0) return std::nullopt;
          return static_cast<double>(v) / 1000.0;
        };
        if (name == "p50_sojourn_us") return windowed(r.sojourn, r.sojourn.p50);
        if (name == "p99_sojourn_us") return windowed(r.sojourn, r.sojourn.p99);
        if (name == "p50_latency_us") return windowed(r.latency, r.latency.p50);
        if (name == "p99_latency_us") return windowed(r.latency, r.latency.p99);
        const auto finite = [](double v) -> std::optional<double> {
          if (!std::isfinite(v)) return std::nullopt;
          return v;
        };
        if (name == "delivered_per_s") return finite(r.delivered_per_s);
        if (name == "submitted_per_s") return finite(r.submitted_per_s);
        if (name == "shed_pct") return finite(r.shed_pct);
        if (name == "reject_pct") return finite(r.reject_pct);
        if (name == "rank_p90") {
          if (r.rank_samples == 0) return std::nullopt;
          return r.rank_p90;
        }
        if (name == "in_flight") {
          const auto v = r.gauges.find("in_flight");
          if (!v) return std::nullopt;
          return *v;
        }
        return std::nullopt;
      };
      r.slo_breached = slo_.evaluate(lookup, r.t_ns);
    }

    prev_t_ns_ = r.t_ns;
    ++count_;
  }

  template <typename Fn>
  void visit_locked(Fn&& fn) const {
    const std::uint64_t retained =
        count_ < ring_.size() ? count_ : ring_.size();
    for (std::uint64_t k = retained; k >= 1; --k) {
      fn(ring_[(count_ - k) % ring_.size()]);
    }
  }

  static void write_window(std::FILE* out, const char* name,
                           const HistogramWindow& w) {
    std::fprintf(out,
                 ",\"%s\":{\"count\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                 "\"max_ns\":%llu}",
                 name, static_cast<unsigned long long>(w.count),
                 static_cast<unsigned long long>(w.p50),
                 static_cast<unsigned long long>(w.p99),
                 static_cast<unsigned long long>(w.max));
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread sampler_;
  std::atomic<bool> active_{false};

  std::vector<TelemetryRecord> ring_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t period_ns_ = 0;
  std::uint64_t start_t_ns_ = 0;
  std::uint64_t prev_t_ns_ = 0;
  // Relaxed-atomic: written by start() (the value never actually changes —
  // it comes from the once-calibrated TscClock), read by hot-path feeds.
  std::atomic<double> ns_per_tick_{1.0};

  AtomicLogHistogram latency_feed_;
  AtomicLogHistogram sojourn_feed_;
  timeseries_detail::SojournStampTable stamps_;

  std::array<std::uint64_t, kNumCounters> prev_counters_{};
  std::array<std::uint64_t, LogHistogram::kBuckets> prev_lat_{};
  std::array<std::uint64_t, LogHistogram::kBuckets> prev_soj_{};
  std::array<std::uint64_t, LogHistogram::kBuckets> scratch_{};
  mm::BlockPool::Stats prev_pool_;
  GaugeSet prev_gauges_;

  Provider providers_[kMaxProviders];
  SloTracker slo_;
};

// RAII provider registration; registers only when the plane is active, so
// inactive runs pay nothing.
class ScopedTelemetryProvider {
 public:
  explicit ScopedTelemetryProvider(TelemetryPlane::Provider provider) {
    if (TelemetryPlane::global().active()) {
      handle_ = TelemetryPlane::global().register_provider(
          std::move(provider));
    }
  }
  ~ScopedTelemetryProvider() {
    TelemetryPlane::global().unregister_provider(handle_);
  }
  ScopedTelemetryProvider(const ScopedTelemetryProvider&) = delete;
  ScopedTelemetryProvider& operator=(const ScopedTelemetryProvider&) = delete;

 private:
  int handle_ = -1;
};

}  // namespace cpq::obs
