// Online rank-error estimator: live p50/max rank-error telemetry while a
// benchmark cell is still running, fed from the same 1-in-64 sampling seam
// as the operation trace rings (CPQ_TRACE_OP in the measurement loops).
//
// The offline replay (bench_framework/quality_replay.cpp) is exact but only
// speaks after a run ends; a relaxation regression mid-sweep is invisible
// until the post-processing step. This estimator maintains a bounded
// sliding-window sketch of sampled live keys: every sampled insert adds its
// key, every sampled successful delete_min estimates the deleted item's rank
// as (number of sketch keys smaller than it) x sample_period — both sides of
// the sketch are thinned at the same rate, so the scaled count is an
// unbiased estimate of the true rank at the deletion point. Estimates feed a
// LogHistogram (p50/p90/max) and are checked against the queue's theoretical
// relaxation bound (kP for the k-LSM; the MultiQueue's O(cP) expectation is
// a soft bound — reported for context, never counted as a violation).
//
// Accuracy model (see EXPERIMENTS.md "live telemetry vs offline replay"):
//   * granularity: estimates are multiples of sample_period (64), so rank
//     errors far below the period read as 0 — strict queues show ~0, the
//     k-LSM's kP-scale errors are resolved;
//   * variance: a sampled window sees rank/period smaller keys in
//     expectation; hard-bound violations therefore use a slack of
//     2 x sample_period so sampling noise alone cannot trip them;
//   * the window is capacity-bounded (kWindowCapacity); when full, new
//     sampled inserts overwrite pseudo-randomly, biasing estimates low for
//     queues holding far more than capacity x period items.
//
// Cost model: observe_* runs only on the sampled path (1 in 64 operations)
// and takes an uncontended internal spin lock for an O(window) scan —
// amortized a few ns/op. When disabled (the default) the feed is one relaxed
// load and a predicted-not-taken branch on the sampled path; with
// CPQ_METRICS off the call sites themselves compile away.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>

#include "obs/histogram.hpp"

namespace cpq::obs {

class RankEstimator {
 public:
  static constexpr std::size_t kWindowCapacity = 256;

  struct Snapshot {
    std::uint64_t samples = 0;     // scored deletions
    double p50 = 0.0;              // estimated rank error percentiles
    double p90 = 0.0;
    std::uint64_t max = 0;
    std::uint64_t violations = 0;  // hard-bound breaches (with slack)
    double bound = 0.0;            // configured theoretical bound (0 = none)
    bool hard_bound = false;
    unsigned sample_period = 1;
  };

  // Leaky singleton, mirroring MetricsRegistry: safe to touch from
  // thread-exit paths at any point of process teardown.
  static RankEstimator& global() {
    static RankEstimator* estimator = new RankEstimator();
    return *estimator;
  }

  // Arm the estimator for a benchmark cell. `bound` is the queue's
  // theoretical rank-error cap at the cell's thread count (0 = none);
  // `hard_bound` says whether breaches count as violations (k-LSM kP) or
  // the bound is an expectation reported for context only (MultiQueue cP).
  // `sample_period` is the trace sampling period (kTraceSampleMask + 1).
  void enable(double bound, bool hard_bound, unsigned sample_period) {
    lock();
    reset_locked();
    bound_ = bound;
    hard_bound_ = hard_bound;
    sample_period_ = sample_period == 0 ? 1 : sample_period;
    unlock();
    enabled_.store(true, std::memory_order_release);
  }

  void disable() { enabled_.store(false, std::memory_order_release); }

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // A sampled insert: the key joins the live-set sketch. When the window is
  // full an arbitrary slot is recycled (round-robin) — dropping a uniformly
  // sampled element keeps the sketch a uniform sample of the live set.
  void observe_insert(std::uint64_t key) noexcept {
    lock();
    if (size_ < kWindowCapacity) {
      window_[size_++] = key;
    } else {
      window_[recycle_++ % kWindowCapacity] = key;
    }
    unlock();
  }

  // A sampled successful delete_min: score the deleted key against the
  // sketch, then evict its sketch entry (exact key match if present,
  // otherwise the smallest entry — the unsampled deletions between two
  // sampled ones removed small keys with high probability).
  void observe_delete(std::uint64_t key) noexcept {
    lock();
    std::size_t smaller = 0;
    std::size_t exact = size_;     // first entry equal to the deleted key
    std::size_t smallest = size_;  // index of the smallest entry
    for (std::size_t i = 0; i < size_; ++i) {
      if (window_[i] < key) ++smaller;
      if (window_[i] == key && exact == size_) exact = i;
      if (smallest == size_ || window_[i] < window_[smallest]) smallest = i;
    }
    const std::uint64_t estimate =
        static_cast<std::uint64_t>(smaller) * sample_period_;
    estimates_.record(estimate);
    if (hard_bound_ && bound_ > 0.0 &&
        static_cast<double>(estimate) >
            bound_ + 2.0 * static_cast<double>(sample_period_)) {
      ++violations_;
    }
    const std::size_t evict = exact != size_ ? exact : smallest;
    if (evict < size_) {
      window_[evict] = window_[--size_];
    }
    unlock();
  }

  Snapshot snapshot() const {
    lock();
    Snapshot snap;
    snap.samples = estimates_.count();
    snap.p50 = static_cast<double>(estimates_.quantile(0.50));
    snap.p90 = static_cast<double>(estimates_.quantile(0.90));
    snap.max = estimates_.max_value();
    snap.violations = violations_;
    snap.bound = bound_;
    snap.hard_bound = hard_bound_;
    snap.sample_period = sample_period_;
    unlock();
    return snap;
  }

  // Watchdog-diagnostics style dump; silent when the estimator never scored
  // a deletion (e.g. quality/sort modes, which do not trace).
  void dump(std::FILE* out) const {
    if (!enabled()) return;
    const Snapshot snap = snapshot();
    if (snap.samples == 0) return;
    std::fprintf(out,
                 "[cpq-rank-est] sampled deletions=%llu "
                 "rank error p50=%.0f p90=%.0f max=%llu",
                 static_cast<unsigned long long>(snap.samples), snap.p50,
                 snap.p90, static_cast<unsigned long long>(snap.max));
    if (snap.bound > 0.0) {
      std::fprintf(out, " bound=%.0f (%s) violations=%llu", snap.bound,
                   snap.hard_bound ? "hard" : "soft",
                   static_cast<unsigned long long>(snap.violations));
    }
    std::fprintf(out, " (x%u sampling)\n", snap.sample_period);
  }

 private:
  RankEstimator() = default;

  void reset_locked() noexcept {
    size_ = 0;
    recycle_ = 0;
    violations_ = 0;
    estimates_.clear();
    bound_ = 0.0;
    hard_bound_ = false;
    sample_period_ = 1;
  }

  // Internal test-and-set lock (not platform/spinlock.hpp: that header
  // includes obs/metrics.hpp, which includes this one — and the estimator's
  // own lock acquisitions must not feed the kLockRetry counter).
  void lock() const noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const noexcept { lock_.clear(std::memory_order_release); }

  std::atomic<bool> enabled_{false};
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::uint64_t window_[kWindowCapacity] = {};
  std::size_t size_ = 0;
  std::size_t recycle_ = 0;
  LogHistogram estimates_;
  std::uint64_t violations_ = 0;
  double bound_ = 0.0;
  bool hard_bound_ = false;
  unsigned sample_period_ = 1;
};

}  // namespace cpq::obs
